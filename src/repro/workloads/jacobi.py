"""Asynchronous Jacobi / chaotic relaxation on a damped 1-D chain.

The model problem is the damped Jacobi fixed point

    u_i = (u_{i-1} + u_{i+1} + f_i) / (2 + SIGMA),    u_{-1} = u_N = 0

with ``SIGMA = 2``: the iteration matrix has max-norm 2/(2+SIGMA) =
1/2, so *chaotic relaxation* (Chazan/Miranker) converges no matter how
stale the neighbour values are, as long as every cell keeps sweeping
and every halo value is eventually refreshed.  That makes it the
canonical degraded-but-correct workload for best-effort delivery: a
dropped halo costs accuracy-per-sweep, never correctness.

Each cell is a chare that drives its own sweeps via a *reliable*
self-send (immune to network faults — it never leaves the PE) and
pushes its value to both neighbours with the configured QoS.  FRESH
halos key each (destination cell, side) as its own supersede flow, so
a delayed retransmitted value cannot overwrite a newer one.  After the
final sweep every cell contributes its error against the known exact
solution to a reliable max-reduction; the root calls ``charm.exit``.

The forcing term ``f`` is manufactured from a chosen exact solution,
so the converged residual is a direct end-to-end correctness measure.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..bgq.params import CYCLES_PER_US
from ..charm import Chare
from ..faults.qos import QOS_RELIABLE

__all__ = ["SIGMA", "JacobiCell", "build_jacobi", "exact_solution", "forcing"]

#: Damping: iteration contraction factor is 2 / (2 + SIGMA) = 1/2.
SIGMA = 2.0


def exact_solution(ncells: int):
    """The manufactured solution u* (smooth, O(1) values)."""
    return [
        math.sin(2.0 * math.pi * (i + 1) / (ncells + 1)) + 0.5
        for i in range(ncells)
    ]


def forcing(ncells: int):
    """f such that u* is the exact fixed point (zero Dirichlet halo)."""
    u = exact_solution(ncells)
    f = []
    for i in range(ncells):
        left = u[i - 1] if i > 0 else 0.0
        right = u[i + 1] if i < ncells - 1 else 0.0
        f.append((2.0 + SIGMA) * u[i] - left - right)
    return f


class JacobiCell(Chare):
    """One cell of the chain; owns u_i and its two halo slots."""

    def __init__(self, cfg: Dict[str, Any]) -> None:
        self.cfg = cfg
        self.u = 0.0
        self.left = 0.0   # latest value received from cell i-1
        self.right = 0.0  # latest value received from cell i+1
        self.sweeps_done = 0
        self.halos_received = 0

    # side 0 = the sender is my left neighbour, 1 = my right neighbour.
    def halo(self, side: int, value: float) -> None:
        self.halos_received += 1
        if side == 0:
            self.left = value
        else:
            self.right = value

    def sweep(self):
        cfg = self.cfg
        i = self.thisIndex
        n = cfg["ncells"]
        yield from self.charge(cfg["compute_instr"])
        self.u = (self.left + self.right + cfg["f"][i]) / (2.0 + SIGMA)
        self.sweeps_done += 1
        # Push the fresh value to both neighbours under the configured
        # QoS.  The explicit fresh_key makes each (destination, side)
        # pair its own supersede flow regardless of chare placement —
        # the default (array, index, method) key would merge the two
        # inbound sides of one cell into a single flow.
        if i > 0:
            yield from self.send(
                i - 1, "halo", cfg["halo_bytes"], 1, self.u,
                fresh_key=("halo", i - 1, 1),
            )
        if i < n - 1:
            yield from self.send(
                i + 1, "halo", cfg["halo_bytes"], 0, self.u,
                fresh_key=("halo", i + 1, 0),
            )
        if self.sweeps_done < cfg["sweeps"]:
            # Self-send: stays on this PE, so the sweep engine keeps
            # turning even when the network eats every halo.
            yield from self.send(i, "sweep", 16)
        else:
            resid = abs(self.u - cfg["exact"][i])
            yield from self.contribute(resid, "max", "jacobi-resid", cfg["finish"])


def build_jacobi(
    charm,
    ncells: int = 8,
    sweeps: int = 60,
    qos: int = QOS_RELIABLE,
    compute_us: float = 25.0,
    halo_bytes: int = 32,
) -> Dict[str, Any]:
    """Wire the solver into a Charm instance; seeds every cell's sweep.

    ``compute_us`` paces the sweeps: at 25 us per sweep a halo that
    needs one retransmit (25 us base timeout) arrives only ~1 sweep
    stale, which keeps the effective contraction rate high under lossy
    profiles.  Returns a box whose ``residual`` the reduction root
    fills in (also the value passed to ``charm.exit``).
    """
    if ncells < 2:
        raise ValueError("jacobi needs at least 2 cells")
    box: Dict[str, Any] = {"residual": None}
    # Halo delivery semantics are the entry method's registered
    # default; the self-driving "sweep" sends stay reliable.
    charm.set_entry_qos("halo", qos)
    cfg: Dict[str, Any] = {
        "ncells": ncells,
        "sweeps": sweeps,
        "f": forcing(ncells),
        "exact": exact_solution(ncells),
        "compute_instr": compute_us * CYCLES_PER_US,
        "halo_bytes": halo_bytes,
    }

    def finish(value: float) -> None:
        box["residual"] = value
        charm.exit(value)

    cfg["finish"] = finish
    array = charm.create_array("jacobi", lambda i: JacobiCell(cfg), range(ncells))
    for i in range(ncells):
        charm.seed(array, i, "sweep")
    box["array"] = array
    box["cfg"] = cfg
    return box
