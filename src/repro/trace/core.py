"""The unified tracer: named counters + span-based activity recording.

This is the reproduction's analogue of Charm++ **Projections** tracing
(the tool behind the paper's Figs. 3, 9 and 10): a single per-run
:class:`Tracer` that every layer of the stack — DES engine, Converse
scheduler, PAMI contexts and communication threads, the BG/Q messaging
unit, the Charm++ facade and the NAMD/FFT harnesses — reports into.

Two kinds of data are collected:

* **Counters** — monotonically accumulated named integers (messages
  sent/received, bytes, scheduler polls, L2 atomic operations,
  allocator pool hits...).  ``count(name)`` is a dict add; optional
  per-track breakdowns use ``count(name, track=rank)``.  The full
  catalogue lives in ``docs/TRACING.md``.

* **Spans** — contiguous activity intervals on a *track* (a PE rank or
  a communication thread).  The flat :meth:`begin`/:meth:`end` API
  matches Projections' one-activity-per-PE-at-a-time model and is what
  the scheduler's hot path uses; the :meth:`span` context manager adds
  proper nesting (an inner span suspends the outer category and
  resumes it on exit), which is what instrumented application code
  wants.

Zero-cost-when-disabled contract: components hold ``tracer`` attributes
that are ``None`` when tracing is off, and every instrumentation site
is guarded by ``if tracer is not None``.  A constructed Tracer can also
be soft-disabled (``enabled=False``) which turns every recording call
into an early-out — used by the overhead benchmark to separate guard
cost from recording cost.

The tracer is deliberately free of simulation imports: it only needs an
object with a ``now`` attribute (duck-typed ``repro.sim.Environment``),
so it can be reused by the analytic-model harnesses as well.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "TracerProtocolError",
    "USEFUL_CATEGORIES",
    "OVERHEAD_CATEGORIES",
]


class TracerProtocolError(RuntimeError):
    """A span/lifecycle-protocol misuse caught under ``REPRO_SANITIZE=1``.

    Raised when the flat :meth:`Tracer.begin` API preempts an activity
    owned by an active :meth:`Tracer.span` context manager — the mix
    that used to make the context-manager exit fabricate a resumed span
    over time the track had explicitly relinquished, double-counting it
    as busy — and when any recording call lands on a tracer that
    :meth:`Tracer.finish` already sealed (a cancelled job's late
    callbacks would otherwise mutate data an exported manifest claims
    is final).  Outside sanitized runs the tracer self-heals instead:
    the preempted context manager skips its resume, and post-finish
    recording is dropped.
    """

#: Categories counted as "useful work" when computing utilization, as in
#: the paper's "(total CPU utilization, useful work utilization)" labels.
USEFUL_CATEGORIES = frozenset(
    {"integrate", "nonbonded", "pme", "bonded", "compute", "fft"}
)
#: Categories counted as busy (useful + overhead) but not idle.
OVERHEAD_CATEGORIES = frozenset({"comm", "sched", "alloc", "pack", "unpack"})


@dataclass(frozen=True)
class Span:
    """One contiguous activity interval on one track.

    ``track`` is an integer: PE rank for worker threads, or an offset id
    for communication threads (see :meth:`Tracer.register_track`).
    """

    track: int
    category: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def thread(self) -> int:
        """Legacy alias for :attr:`track` (the timeline recorder's name)."""
        return self.track


class Tracer:
    """Per-run tracing and metrics hub (Projections analogue).

    Parameters
    ----------
    env:
        Clock source; anything with a ``now`` attribute.
    enabled:
        Soft switch.  When False every recording method early-outs; the
        hard zero-cost switch is holding ``None`` instead of a Tracer.
    """

    def __init__(self, env: Any, enabled: bool = True) -> None:
        self.env = env
        self.enabled = enabled
        #: Global named counters (see docs/TRACING.md for the catalogue).
        self.counters: Dict[str, float] = {}
        #: Optional per-track breakdown: name -> {track: value}.
        self.track_counters: Dict[str, Dict[int, float]] = {}
        #: Closed activity spans, in close order.
        self.spans: List[Span] = []
        #: Human-readable labels for non-PE tracks (comm threads...).
        self.track_labels: Dict[int, str] = {}
        # Open activity per track: (category, start, owner).  owner is
        # None for flat begin()s, or a per-span() token object so the
        # context manager can tell on exit whether it still owns the
        # track (see span() and TracerProtocolError).
        self._open: Dict[int, Tuple[str, float, Optional[object]]] = {}
        self._nest: Dict[int, List[List[Any]]] = {}
        self._finalizers: List[Any] = []
        #: Instant events ``(track, name, time)`` — e.g. fault-injection
        #: marks; rendered as Chrome-trace instants by the exporter.
        self.marks: List[Tuple[int, str, float]] = []
        #: Causal message-provenance events, in record order (see
        #: :meth:`msg_send`; schema in docs/TRACING.md).
        self.provenance: List[Tuple[Any, ...]] = []
        #: Simulated hardware-performance-monitor groups, one dict of
        #: counters per node id; populated at finish() when the runtime
        #: installed the HPM finalizer (``repro.trace.hpm``).
        self.hpm: Dict[int, Dict[str, float]] = {}
        # Same contract as the engine's REPRO_SANITIZE: sampled once at
        # construction; strict mode turns span-protocol misuse into
        # TracerProtocolError instead of self-healing.
        self._strict = enabled and os.environ.get("REPRO_SANITIZE") == "1"
        # Set by finish(): the tracer is sealed — finish() is
        # idempotent (finalizers run exactly once) and recording calls
        # are rejected (strict) or dropped (self-heal).
        self._finished = False

    def _sealed(self, what: str) -> bool:
        """True (and self-heal by dropping) if recording after finish."""
        if not self._finished:
            return False
        if self._strict:
            raise TracerProtocolError(
                f"{what} on a finished Tracer — finish() sealed this "
                "trace (its manifest may already be exported); a "
                "cancelled or reused job must record into a fresh Tracer"
            )
        return True

    # -- instant events ----------------------------------------------------
    def mark(self, track: int, name: str) -> None:
        """Record a zero-duration instant event on ``track`` at ``now``."""
        if not self.enabled:
            return
        if self._finished and self._sealed("mark()"):
            return
        self.marks.append((track, name, self.env.now))

    # -- causal message provenance ----------------------------------------
    # Every Converse message gets a monotonic (src_pe, seq) id stamped at
    # send time (only when tracing — the id rides in host-side tuples, so
    # stamping is cycle-neutral).  Three event kinds turn a trace into a
    # dependency DAG (repro.trace.provenance builds it):
    #
    #   ("send", msg_id, src_track, dst_pe, nbytes, t)
    #   ("recv", msg_id, dst_track, t)          # arrival at the dest PE queue
    #   ("exec", msg_id, track, t0, t1)         # handler execution interval
    #
    # Retransmits re-deliver the same payload object, so a msg_id can
    # legitimately appear in more than one recv event; analysis keeps the
    # first.
    #
    # The per-message hot paths (converse/machine.py send/deliver,
    # converse/scheduler.py execute) append these tuples to
    # ``self.provenance`` directly after checking ``enabled`` — a method
    # call per message event does not fit the <5% tracer overhead budget
    # (benchmarks/test_trace_overhead.py).  Keep the schemas in sync.
    def msg_send(self, msg_id: Any, track: int, dst: int, nbytes: int) -> None:
        """Record the send edge of message ``msg_id`` from ``track``."""
        if not self.enabled:
            return
        if self._finished and self._sealed("msg_send()"):
            return
        self.provenance.append(("send", msg_id, track, dst, nbytes, self.env.now))

    def msg_recv(self, msg_id: Any, track: int) -> None:
        """Record message arrival at the destination track's queue."""
        if not self.enabled:
            return
        if self._finished and self._sealed("msg_recv()"):
            return
        self.provenance.append(("recv", msg_id, track, self.env.now))

    def msg_exec(self, msg_id: Any, track: int, start: float, end: float) -> None:
        """Record the handler-execution interval for ``msg_id``."""
        if not self.enabled:
            return
        if self._finished and self._sealed("msg_exec()"):
            return
        self.provenance.append(("exec", msg_id, track, start, end))

    # -- counters ---------------------------------------------------------
    def count(self, name: str, n: float = 1, track: Optional[int] = None) -> None:
        """Accumulate ``n`` into counter ``name`` (and a track bucket)."""
        if not self.enabled:
            return
        if self._finished and self._sealed("count()"):
            return
        counters = self.counters
        counters[name] = counters.get(name, 0) + n
        if track is not None:
            per = self.track_counters.setdefault(name, {})
            per[track] = per.get(track, 0) + n

    def get(self, name: str, default: float = 0) -> float:
        """Read a counter (0 if never incremented)."""
        return self.counters.get(name, default)

    # -- track identity ----------------------------------------------------
    def register_track(self, track: int, label: str) -> None:
        """Name a track (e.g. ``register_track(10000, "commthread-0")``)."""
        self.track_labels[track] = label

    def label_of(self, track: int) -> str:
        return self.track_labels.get(track, f"pe{track}")

    # -- spans: flat begin/end (scheduler hot path) ------------------------
    def begin(self, track: int, category: str) -> None:
        """Start activity ``category`` on ``track``, closing any open one."""
        if not self.enabled:
            return
        if self._finished and self._sealed("begin()"):
            return
        self._begin(track, category, None)

    def _begin(self, track: int, category: str, owner: Optional[object]) -> None:
        now = self.env.now
        prev = self._open.get(track)
        if prev is not None:
            cat, t0, prev_owner = prev
            if prev_owner is not None and owner is None and self._strict:
                raise TracerProtocolError(
                    f"begin({track}, {category!r}) preempts the "
                    f"{cat!r} activity owned by an active span() context "
                    "manager — use a nested span(), or end the context "
                    "before switching to the flat API"
                )
            if now > t0:
                self.spans.append(Span(track, cat, t0, now))
        self._open[track] = (category, now, owner)

    def end(self, track: int) -> None:
        """Close the open activity on ``track`` (no-op if none)."""
        if not self.enabled:
            return
        if self._finished and self._sealed("end()"):
            return
        prev = self._open.pop(track, None)
        if prev is not None:
            cat, t0, _ = prev
            now = self.env.now
            if now > t0:
                self.spans.append(Span(track, cat, t0, now))

    def record(self, track: int, category: str, start: float, end: float) -> None:
        """Record a fully-known span directly."""
        if not self.enabled:
            return
        if self._finished and self._sealed("record()"):
            return
        if end < start:
            raise ValueError("span end precedes start")
        if end > start:
            self.spans.append(Span(track, category, start, end))

    @contextmanager
    def span(self, track: int, category: str) -> Iterator[None]:
        """Nested activity recording.

        Entering starts ``category`` on ``track``; exiting resumes
        whatever category was active before (or closes the track).  The
        resulting spans stay flat and non-overlapping — an inner span
        splits its parent into before/after segments, which is what the
        timeline renderers and the Chrome exporter expect.
        """
        if not self.enabled:
            yield
            return
        if self._finished and self._sealed("span()"):
            yield
            return
        prev = self._open.get(track)
        stack = self._nest.setdefault(track, [])
        entry: Optional[List[Any]] = None
        if prev is not None:
            # Remember what to resume *and* who owned it, so a nested
            # span() hands the track back to its enclosing span().
            entry = [prev[0], prev[2]]
            stack.append(entry)
        owner = object()
        self._begin(track, category, owner)
        try:
            yield
        finally:
            if entry is not None:
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is entry:
                        del stack[i]
                        break
            cur = self._open.get(track)
            if cur is not None and cur[2] is owner:
                if entry is not None:
                    self._begin(track, entry[0], entry[1])
                else:
                    self.end(track)
            # else: a flat begin()/end() took the track away mid-span
            # (raises under REPRO_SANITIZE=1, see _begin).  Self-heal by
            # NOT resuming: the pre-fix code re-opened the suspended
            # category here, fabricating busy time over an interval the
            # track had already ended — the double-counting bug.

    def add_finalizer(self, fn: Any) -> None:
        """Register a zero-arg callable run by :meth:`finish`.

        Hot components don't call :meth:`count` per event — they keep
        plain integer statistics (hardware-perf-counter style, always
        on, an int add each) and a finalizer snapshots them into
        :attr:`counters` when the run ends.  Snapshots must *assign*
        (not add) so finish() stays idempotent.
        """
        self._finalizers.append(fn)

    def finish(self) -> None:
        """Close all open spans and harvest component-maintained counters.

        Idempotent: the first call seals the tracer; later calls are
        no-ops, so finalizers run exactly once no matter how many
        teardown paths reach a job (normal completion, cancellation,
        service shutdown).  After sealing, recording calls raise
        :class:`TracerProtocolError` under ``REPRO_SANITIZE=1`` and are
        silently dropped otherwise — an exported manifest stays the
        final word on the run.
        """
        if self._finished:
            return
        for track in list(self._open):
            self.end(track)
        self._nest.clear()
        if not self.enabled:
            self._finished = True
            return
        # The DES engine counts processed events with a bare int (its
        # hottest loop; a tracer call there costs ~10% wall time).
        n = getattr(self.env, "events_executed", 0)
        if n:
            self.counters["engine.events"] = n
        for fn in self._finalizers:
            fn()
        self._finished = True

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has sealed this tracer."""
        return self._finished

    # -- queries -----------------------------------------------------------
    def tracks(self) -> List[int]:
        return sorted({s.track for s in self.spans})

    def categories(self) -> List[str]:
        return sorted({s.category for s in self.spans})

    def time_span(self) -> Tuple[float, float]:
        if not self.spans:
            return (0.0, 0.0)
        return (
            min(s.start for s in self.spans),
            max(s.end for s in self.spans),
        )

    def time_in(self, category: str, track: Optional[int] = None) -> float:
        return sum(
            s.duration
            for s in self.spans
            if s.category == category and (track is None or s.track == track)
        )

    def utilization(self, track: Optional[int] = None) -> Tuple[float, float]:
        """Return (total busy fraction, useful-work fraction).

        Mirrors the "(total CPU utilization, useful work utilization)"
        pair printed on the paper's Projections timeline figures.
        """
        t0, t1 = self.time_span()
        horizon = t1 - t0
        if horizon <= 0:
            return (0.0, 0.0)
        spans = [s for s in self.spans if track is None or s.track == track]
        ntracks = len({s.track for s in spans}) or 1
        busy = sum(s.duration for s in spans if s.category != "idle")
        useful = sum(s.duration for s in spans if s.category in USEFUL_CATEGORIES)
        denom = horizon * ntracks
        return (busy / denom, useful / denom)

    def category_times(self, track: int) -> Dict[str, float]:
        """Total time per category on one track."""
        out: Dict[str, float] = {}
        for s in self.spans:
            if s.track == track:
                out[s.category] = out.get(s.category, 0.0) + s.duration
        return out
