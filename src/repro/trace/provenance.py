"""Causal analysis over message-provenance events.

The tracer records three event kinds (see ``Tracer.msg_send``):

* ``("send", msg_id, src_track, dst_pe, nbytes, t)``
* ``("recv", msg_id, dst_track, t)``
* ``("exec", msg_id, track, t0, t1)``

together they replay a traced run as a dependency DAG: the execution
of message M on its destination PE depends on (a) M's arrival, which
depends on the sender's execution that issued the send, and (b) the
previous execution on the same PE (one scheduler, one message at a
time).  This module builds that DAG and answers the two questions the
paper's Projections figures answer by eyeball:

* **critical path** (:func:`critical_path`) — the longest chain of
  alternating execution and message-flight segments ending at the last
  handler execution in the trace; its length bounds the run (no
  scheduling change can beat it without changing the messages).

* **idle-time attribution** (:func:`idle_attribution`) — each ``idle``
  span on a track is blamed on the in-flight message whose arrival
  ended it, so "why was PE 7 idle from t=1200–1900" has a mechanical
  answer: it was waiting for message ``(3, 17)`` sent by PE 3.

Events arrive either as the tracer's tuples or as JSON-decoded lists
(ids become 2-element lists); everything is normalized on entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .core import Span

__all__ = [
    "MessageRecord",
    "PathSegment",
    "build_messages",
    "critical_path",
    "critical_path_summary",
    "idle_attribution",
    "message_stats",
]


def _norm_id(msg_id: Any) -> Tuple[Any, ...]:
    return tuple(msg_id) if isinstance(msg_id, list) else msg_id


@dataclass
class MessageRecord:
    """Everything known about one stamped message."""

    msg_id: Tuple[int, int]
    src_track: Optional[int] = None
    dst: Optional[int] = None
    nbytes: int = 0
    sent: Optional[float] = None
    #: First arrival at the destination queue (retransmits can add more
    #: recv events; only the first one matters causally).
    recv: Optional[float] = None
    exec_track: Optional[int] = None
    exec_start: Optional[float] = None
    exec_end: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Send-to-arrival flight time (None until both edges exist)."""
        if self.sent is None or self.recv is None:
            return None
        return self.recv - self.sent


def build_messages(provenance: Sequence[Sequence[Any]]) -> Dict[Tuple[int, int], MessageRecord]:
    """Fold the provenance event stream into per-message records."""
    out: Dict[Tuple[int, int], MessageRecord] = {}

    def rec_of(msg_id: Any) -> MessageRecord:
        key = _norm_id(msg_id)
        r = out.get(key)
        if r is None:
            r = out[key] = MessageRecord(key)
        return r

    for ev in provenance:
        kind = ev[0]
        if kind == "send":
            _, msg_id, track, dst, nbytes, t = ev
            r = rec_of(msg_id)
            r.src_track, r.dst, r.nbytes, r.sent = track, dst, nbytes, t
        elif kind == "recv":
            _, msg_id, track, t = ev
            r = rec_of(msg_id)
            if r.recv is None:
                r.recv = t
        elif kind == "exec":
            _, msg_id, track, t0, t1 = ev
            r = rec_of(msg_id)
            r.exec_track, r.exec_start, r.exec_end = track, t0, t1
    return out


@dataclass
class PathSegment:
    """One critical-path segment: a handler execution or a message flight."""

    kind: str  # "exec" | "xfer"
    track: int  # executing PE, or the *destination* PE of a flight
    start: float
    end: float
    msg_id: Tuple[int, int]
    #: Handler category for exec segments when span data was supplied.
    category: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


def critical_path(
    provenance: Sequence[Sequence[Any]],
    spans: Optional[Sequence[Span]] = None,
) -> List[PathSegment]:
    """Extract the critical path ending at the last execution.

    Backtracks from the globally last handler execution.  At each
    execution of message M on track T, the dominating predecessor is
    whichever finished later: the previous execution on T (scheduler
    serialization) or M's own arrival (message dependency); a message
    dependency is followed to the sender execution that issued the
    send.  Returns segments in time order (path start first).  Pass the
    tracer's ``spans`` to label exec segments with handler categories.
    """
    messages = build_messages(provenance)
    execs = [m for m in messages.values() if m.exec_end is not None]
    if not execs:
        return []
    # Per-track execution order, for the previous-exec predecessor.
    by_track: Dict[int, List[MessageRecord]] = {}
    for m in execs:
        by_track.setdefault(m.exec_track, []).append(m)
    prev_on_track: Dict[Tuple[int, int], Optional[MessageRecord]] = {}
    for track_execs in by_track.values():
        track_execs.sort(key=lambda m: (m.exec_start, m.exec_end))
        prev = None
        for m in track_execs:
            prev_on_track[m.msg_id] = prev
            prev = m
    # Sender execution containing a given send time on a given track —
    # or, for sends issued outside handler context (m2m completions,
    # comm-thread offloaded work), the last execution on that track that
    # finished before the send (program-order causality; keeps the walk
    # acyclic because the predecessor strictly precedes the send).
    def sender_exec(m: MessageRecord) -> Optional[MessageRecord]:
        if m.sent is None or m.src_track is None:
            return None
        best: Optional[MessageRecord] = None
        for cand in by_track.get(m.src_track, []):
            if cand.exec_start <= m.sent <= cand.exec_end:
                return cand
            if cand.exec_end <= m.sent:
                best = cand
        return best

    segments: List[PathSegment] = []
    cur: Optional[MessageRecord] = max(execs, key=lambda m: m.exec_end)
    visited: set = set()
    while cur is not None and cur.msg_id not in visited:
        visited.add(cur.msg_id)
        segments.append(
            PathSegment("exec", cur.exec_track, cur.exec_start, cur.exec_end, cur.msg_id)
        )
        prev = prev_on_track.get(cur.msg_id)
        arrival = cur.recv
        # Which dependency released this execution last?
        if arrival is not None and (prev is None or arrival >= prev.exec_end):
            if cur.sent is not None and arrival > cur.sent:
                segments.append(
                    PathSegment("xfer", cur.exec_track, cur.sent, arrival, cur.msg_id)
                )
            cur = sender_exec(cur)
        else:
            cur = prev
    segments.reverse()
    if spans is not None:
        # Label each exec segment with the dominant (longest) span the
        # tracer recorded inside its interval — the handler's category,
        # or "comm" when the handler spent its time in the send path.
        spans_by_track: Dict[int, List[Span]] = {}
        for s in spans:
            spans_by_track.setdefault(s.track, []).append(s)
        for seg in segments:
            if seg.kind != "exec":
                continue
            best = None
            for s in spans_by_track.get(seg.track, ()):
                if s.start >= seg.start and s.end <= seg.end:
                    if best is None or s.duration > best.duration:
                        best = s
            seg.category = best.category if best is not None else None
    return segments


def critical_path_summary(
    provenance: Sequence[Sequence[Any]],
    spans: Optional[Sequence[Span]] = None,
) -> Dict[str, Any]:
    """Compact summary for manifests and the diff gate."""
    path = critical_path(provenance, spans)
    if not path:
        return {"length": 0.0, "nsegments": 0, "exec_time": 0.0, "xfer_time": 0.0}
    return {
        "length": path[-1].end - path[0].start,
        "nsegments": len(path),
        "exec_time": sum(s.duration for s in path if s.kind == "exec"),
        "xfer_time": sum(s.duration for s in path if s.kind == "xfer"),
    }


def idle_attribution(
    provenance: Sequence[Sequence[Any]],
    spans: Sequence[Span],
) -> List[Dict[str, Any]]:
    """Blame each ``idle`` span on the message whose arrival ended it.

    For every idle span on a track, the culprit is the first recv event
    on that track inside ``(start, end]`` — the in-flight message the PE
    was waiting for.  Idle gaps with no such arrival (e.g. the final
    wind-down) get ``msg_id: None``.  Rows are ordered by idle start.
    """
    recvs_by_track: Dict[int, List[Tuple[float, Tuple[int, int]]]] = {}
    for ev in provenance:
        if ev[0] == "recv":
            _, msg_id, track, t = ev
            recvs_by_track.setdefault(track, []).append((t, _norm_id(msg_id)))
    for lst in recvs_by_track.values():
        lst.sort()
    messages = build_messages(provenance)
    rows: List[Dict[str, Any]] = []
    for s in sorted(spans, key=lambda s: (s.start, s.track)):
        if s.category != "idle":
            continue
        blame: Optional[Tuple[int, int]] = None
        for t, msg_id in recvs_by_track.get(s.track, []):
            if s.start < t <= s.end:
                blame = msg_id
                break
            if t > s.end:
                break
        src = None
        if blame is not None:
            m = messages.get(blame)
            if m is not None:
                src = m.src_track
        rows.append(
            {
                "track": s.track,
                "start": s.start,
                "end": s.end,
                "duration": s.duration,
                "msg_id": blame,
                "blamed_src": src,
            }
        )
    return rows


def message_stats(provenance: Sequence[Sequence[Any]]) -> Dict[str, Any]:
    """Latency/size aggregates over all stamped messages."""
    messages = build_messages(provenance)
    latencies = sorted(
        m.latency for m in messages.values() if m.latency is not None
    )
    sizes = sorted(m.nbytes for m in messages.values() if m.sent is not None)
    def agg(vals: List[float]) -> Dict[str, float]:
        if not vals:
            return {"count": 0, "min": 0.0, "mean": 0.0, "p50": 0.0, "max": 0.0}
        return {
            "count": len(vals),
            "min": vals[0],
            "mean": sum(vals) / len(vals),
            "p50": vals[len(vals) // 2],
            "max": vals[-1],
        }

    return {
        "messages": len(messages),
        "executed": sum(1 for m in messages.values() if m.exec_end is not None),
        "bytes": sum(sizes),
        "latency": agg(latencies),
        "size": agg([float(s) for s in sizes]),
    }
