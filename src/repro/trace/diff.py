"""Trace-diff regression gate: compare two run manifests.

Counters, per-track utilization and critical-path length are the
trace-shaped quantities a refactor should *not* silently move.  This
module compares a candidate manifest against a committed baseline with
configurable tolerances and reports every violation — the engine behind
``make trace-gate`` (see :mod:`repro.harness.tracegate`).

Three families of checks:

* **counters** — relative delta per counter name (default tolerance
  ``rel_tol``, overridable per counter via ``counter_tols``, e.g. a
  looser bound for timing-dependent FIFO high-water marks).  Counters
  present on only one side are violations too (an instrumentation
  point appeared or vanished).
* **utilization** — absolute delta on each track's busy/useful
  fractions (``util_tol``).
* **critical path** — relative delta on the path length
  (``critpath_tol``); segment-count drift is reported as info, not a
  failure (path shape is more timing-sensitive than its length).

Everything returns plain dicts so the CLI can emit ``--format json``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional
from types import MappingProxyType

__all__ = ["diff_manifests", "format_diff", "load_manifest"]

#: Counters that are expected to wobble between byte-identical runs is
#: a contradiction in a deterministic DES — but high-water marks and
#: round counts are legitimately sensitive to unrelated host-side
#: ordering, so the gate ships looser defaults for them.
DEFAULT_COUNTER_TOLS = MappingProxyType({
    "hpm.mu.ififo_occupancy_hwm": 0.5,
    "hpm.mu.rfifo_occupancy_hwm": 0.5,
    "hpm.commthread.rounds": 0.25,
})


def load_manifest(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        doc = json.load(fh)
    if "traceEvents" in doc:
        raise ValueError(
            f"{path} is a Chrome trace, not a run manifest — "
            "the diff gate compares .manifest.json artifacts"
        )
    return doc


def _rel_delta(a: float, b: float) -> float:
    if a == b:
        return 0.0
    denom = max(abs(a), abs(b))
    return abs(a - b) / denom if denom else 0.0


def diff_manifests(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    rel_tol: float = 0.10,
    util_tol: float = 0.05,
    critpath_tol: float = 0.10,
    counter_tols: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Compare ``candidate`` against ``baseline``.

    Returns ``{"ok": bool, "violations": [...], "info": [...],
    "checked": {...}}`` where each violation is a dict naming the check
    family, the key, both values and the tolerance that was exceeded.
    """
    tols = dict(DEFAULT_COUNTER_TOLS)
    tols.update(counter_tols or {})
    violations: List[Dict[str, Any]] = []
    info: List[Dict[str, Any]] = []

    # -- counters (global counters + flattened HPM totals) -----------------
    base_counters = dict(baseline.get("counters", {}))
    cand_counters = dict(candidate.get("counters", {}))
    ncounters = 0
    for name in sorted(set(base_counters) | set(cand_counters)):
        ncounters += 1
        if name not in base_counters or name not in cand_counters:
            violations.append(
                {
                    "check": "counter",
                    "key": name,
                    "baseline": base_counters.get(name),
                    "candidate": cand_counters.get(name),
                    "tol": None,
                    "why": "present on only one side",
                }
            )
            continue
        tol = tols.get(name, rel_tol)
        delta = _rel_delta(base_counters[name], cand_counters[name])
        if delta > tol:
            violations.append(
                {
                    "check": "counter",
                    "key": name,
                    "baseline": base_counters[name],
                    "candidate": cand_counters[name],
                    "delta": delta,
                    "tol": tol,
                    "why": f"relative delta {delta:.3f} > {tol}",
                }
            )

    # -- per-track utilization --------------------------------------------
    def util_map(doc: Dict[str, Any]) -> Dict[Any, Dict[str, float]]:
        return {
            row.get("label", row.get("track")): row
            for row in doc.get("utilization", [])
        }

    base_util = util_map(baseline)
    cand_util = util_map(candidate)
    nutil = 0
    for key in sorted(set(base_util) | set(cand_util), key=str):
        if key not in base_util or key not in cand_util:
            violations.append(
                {
                    "check": "utilization",
                    "key": key,
                    "baseline": key in base_util or None,
                    "candidate": key in cand_util or None,
                    "tol": None,
                    "why": "track present on only one side",
                }
            )
            continue
        for metric in ("busy", "useful"):
            nutil += 1
            b = float(base_util[key].get(metric, 0.0))
            c = float(cand_util[key].get(metric, 0.0))
            if abs(b - c) > util_tol:
                violations.append(
                    {
                        "check": "utilization",
                        "key": f"{key}.{metric}",
                        "baseline": b,
                        "candidate": c,
                        "delta": abs(b - c),
                        "tol": util_tol,
                        "why": f"absolute delta {abs(b - c):.3f} > {util_tol}",
                    }
                )

    # -- critical path -----------------------------------------------------
    base_cp = baseline.get("critical_path", {})
    cand_cp = candidate.get("critical_path", {})
    ncp = 0
    if base_cp or cand_cp:
        ncp = 1
        b = float(base_cp.get("length", 0.0))
        c = float(cand_cp.get("length", 0.0))
        delta = _rel_delta(b, c)
        if delta > critpath_tol:
            violations.append(
                {
                    "check": "critical_path",
                    "key": "length",
                    "baseline": b,
                    "candidate": c,
                    "delta": delta,
                    "tol": critpath_tol,
                    "why": f"relative delta {delta:.3f} > {critpath_tol}",
                }
            )
        bn = base_cp.get("nsegments")
        cn = cand_cp.get("nsegments")
        if bn != cn:
            info.append(
                {
                    "check": "critical_path",
                    "key": "nsegments",
                    "baseline": bn,
                    "candidate": cn,
                    "why": "segment count drifted (informational)",
                }
            )

    return {
        "ok": not violations,
        "baseline_label": baseline.get("label", ""),
        "candidate_label": candidate.get("label", ""),
        "violations": violations,
        "info": info,
        "checked": {
            "counters": ncounters,
            "utilization": nutil,
            "critical_path": ncp,
        },
    }


def format_diff(result: Dict[str, Any]) -> str:
    """Render a :func:`diff_manifests` result as text."""
    checked = result["checked"]
    lines = [
        f"trace-diff: {result['baseline_label']!r} vs "
        f"{result['candidate_label']!r} — "
        f"{checked['counters']} counters, "
        f"{checked['utilization']} utilization metrics, "
        f"{checked['critical_path']} critical-path checks"
    ]
    for v in result["violations"]:
        lines.append(
            f"  FAIL {v['check']}:{v['key']} "
            f"baseline={v['baseline']} candidate={v['candidate']} ({v['why']})"
        )
    for i in result["info"]:
        lines.append(
            f"  info {i['check']}:{i['key']} "
            f"baseline={i['baseline']} candidate={i['candidate']} ({i['why']})"
        )
    lines.append("OK" if result["ok"] else
                 f"FAILED: {len(result['violations'])} violation(s)")
    return "\n".join(lines)
