"""Projections-style tracing & metrics for the BG/Q reproduction.

The paper's evidence is trace-shaped — per-thread timelines (Fig. 3),
comm-thread utilization profiles (Fig. 9), timestep-density windows
(Fig. 10) — and Charm++ ships the Projections tool to collect it.  This
package is the reproduction's equivalent: a unified
:class:`~repro.trace.core.Tracer` (named counters + activity spans)
that every runtime layer reports into, plus exporters for Chrome
``trace_event`` JSON (``chrome://tracing`` / Perfetto), per-PE
utilization tables, and machine-readable run manifests.

See ``docs/TRACING.md`` for the API reference and counter catalogue,
and ``docs/ARCHITECTURE.md`` for where each layer hooks in.  Try
``python -m repro.trace.demo`` for an end-to-end traced run.
"""

from .core import (
    OVERHEAD_CATEGORIES,
    Span,
    Tracer,
    TracerProtocolError,
    USEFUL_CATEGORIES,
)
from .exporters import (
    format_utilization_table,
    run_manifest,
    to_chrome_trace,
    utilization_summary,
    write_chrome_trace,
    write_run_manifest,
)

__all__ = [
    "OVERHEAD_CATEGORIES",
    "Span",
    "Tracer",
    "TracerProtocolError",
    "USEFUL_CATEGORIES",
    "format_utilization_table",
    "run_manifest",
    "to_chrome_trace",
    "utilization_summary",
    "write_chrome_trace",
    "write_run_manifest",
]
