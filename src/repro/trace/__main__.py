"""``python -m repro.trace`` — the Projections-style analysis CLI.

Loads a ``.trace.json`` (Chrome trace_event export) or a
``.manifest.json`` artifact and produces the reports Charm++'s
Projections tool would:

* ``analyze``     — everything below, in one report
* ``timeprofile`` — stacked category time per interval (Fig. 10 style)
* ``utilization`` — per-track busy/useful table + balance histogram
* ``critpath``    — critical path through the message DAG (Fig. 3)
* ``messages``    — message latency/size aggregates and histograms
* ``idle``        — longest idle gaps with the message each waited for
* ``hpm``         — simulated per-node hardware counter groups
* ``diff``        — compare two manifests (the trace-gate engine)

All subcommands take ``--format text|json``; text is the default.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

from .analyze import (
    TraceDoc,
    critical_path_report,
    format_critical_path,
    format_histogram,
    format_hpm,
    format_imbalance,
    format_messages,
    format_time_profile,
    idle_report,
    load_artifact,
    load_imbalance,
    message_report,
    time_profile,
    utilization_histogram,
    utilization_rows,
)
from .diff import diff_manifests, format_diff, load_manifest


def _emit(args: argparse.Namespace, payload: Dict[str, Any], text: str) -> None:
    if args.format == "json":
        json.dump(payload, sys.stdout, indent=1, default=str)
        sys.stdout.write("\n")
    else:
        print(text)


def _unit(doc: TraceDoc) -> str:
    if doc.kind == "trace":
        # Chrome exports carry microsecond ts/dur by convention.
        return "us"
    return doc.time_unit or "cycles"


def _format_utilization(doc: TraceDoc, unit: str) -> str:
    rows = utilization_rows(doc)
    if not rows:
        return "(no utilization data)"
    lines = []
    for r in rows:
        lines.append(
            f"  {r.get('label', r.get('track')):>16}  "
            f"busy {r.get('busy', 0.0) * 100:5.1f}%  "
            f"useful {r.get('useful', 0.0) * 100:5.1f}%"
        )
    return "\n".join(lines)


def cmd_timeprofile(args: argparse.Namespace) -> int:
    doc = load_artifact(args.artifact)
    if doc.kind == "manifest":
        print("time profile needs a full .trace.json artifact "
              "(manifests carry only aggregates)", file=sys.stderr)
        return 2
    profile = time_profile(doc.spans, bins=args.bins)
    _emit(args, profile, format_time_profile(profile, _unit(doc)))
    return 0


def cmd_utilization(args: argparse.Namespace) -> int:
    doc = load_artifact(args.artifact)
    rows = utilization_rows(doc)
    hist = utilization_histogram(doc)
    imb = load_imbalance(doc)
    text = "\n".join(
        [
            f"per-track utilization ({doc.label or doc.path}):",
            _format_utilization(doc, _unit(doc)),
            "",
            "busy-fraction histogram:",
            format_histogram(hist),
            "",
            "load imbalance (max/avg per category):",
            format_imbalance(imb, _unit(doc)),
        ]
    )
    _emit(args, {"utilization": rows, "histogram": hist, "imbalance": imb}, text)
    return 0


def cmd_critpath(args: argparse.Namespace) -> int:
    doc = load_artifact(args.artifact)
    report = critical_path_report(doc, top=args.top)
    _emit(args, report, format_critical_path(report, _unit(doc)))
    return 0


def cmd_messages(args: argparse.Namespace) -> int:
    doc = load_artifact(args.artifact)
    stats = message_report(doc)
    _emit(args, stats, format_messages(stats, _unit(doc)))
    return 0


def cmd_idle(args: argparse.Namespace) -> int:
    doc = load_artifact(args.artifact)
    if doc.kind == "manifest":
        print("idle attribution needs a full .trace.json artifact",
              file=sys.stderr)
        return 2
    rows = idle_report(doc, top=args.top)
    lines = ["longest idle gaps (blamed on the arrival that ended each):"]
    for r in rows:
        blame = (f"msg ({r['msg_id'][0]},{r['msg_id'][1]}) from "
                 f"{doc.label_of(r['blamed_src'])}"
                 if r["msg_id"] is not None else "no arrival (wind-down)")
        lines.append(
            f"  {doc.label_of(r['track']):>16}  "
            f"{r['start']:.0f}-{r['end']:.0f}  "
            f"dur {r['duration']:.0f}  <- {blame}"
        )
    _emit(args, {"idle": rows}, "\n".join(lines))
    return 0


def cmd_hpm(args: argparse.Namespace) -> int:
    doc = load_artifact(args.artifact)
    _emit(args, {"hpm": doc.hpm}, format_hpm(doc.hpm))
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    doc = load_artifact(args.artifact)
    unit = _unit(doc)
    payload: Dict[str, Any] = {
        "artifact": doc.path,
        "kind": doc.kind,
        "label": doc.label,
    }
    sections = [f"== {doc.label or doc.path} ({doc.kind}, times in {unit}) =="]

    rows = utilization_rows(doc)
    payload["utilization"] = rows
    sections += ["", "-- utilization --", _format_utilization(doc, unit)]
    imb = load_imbalance(doc)
    payload["imbalance"] = imb
    if imb:
        sections += ["", "-- load imbalance --", format_imbalance(imb, unit)]

    if doc.kind == "trace":
        profile = time_profile(doc.spans, bins=args.bins)
        payload["time_profile"] = profile
        sections += ["", "-- time profile --", format_time_profile(profile, unit)]

    cp = critical_path_report(doc, top=args.top)
    payload["critical_path"] = cp
    sections += ["", "-- critical path --", format_critical_path(cp, unit)]

    stats = message_report(doc)
    payload["messages"] = stats
    sections += ["", "-- messages --", format_messages(stats, unit)]

    if doc.hpm:
        payload["hpm"] = doc.hpm
        sections += ["", "-- simulated HPM counters --", format_hpm(doc.hpm)]

    _emit(args, payload, "\n".join(sections))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    base = load_manifest(args.baseline)
    cand = load_manifest(args.candidate)
    result = diff_manifests(
        base,
        cand,
        rel_tol=args.rel_tol,
        util_tol=args.util_tol,
        critpath_tol=args.critpath_tol,
    )
    _emit(args, result, format_diff(result))
    return 0 if result["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Projections-style analysis over trace artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, fn, help: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help)
        p.set_defaults(fn=fn)
        p.add_argument("--format", choices=("text", "json"), default="text")
        return p

    p = add("analyze", cmd_analyze, "full report over one artifact")
    p.add_argument("artifact")
    p.add_argument("--bins", type=int, default=12)
    p.add_argument("--top", type=int, default=10)

    p = add("timeprofile", cmd_timeprofile, "stacked category time per interval")
    p.add_argument("artifact")
    p.add_argument("--bins", type=int, default=12)

    p = add("utilization", cmd_utilization, "per-track busy/useful + balance")
    p.add_argument("artifact")

    p = add("critpath", cmd_critpath, "critical path through the message DAG")
    p.add_argument("artifact")
    p.add_argument("--top", type=int, default=10)

    p = add("messages", cmd_messages, "message latency/size statistics")
    p.add_argument("artifact")

    p = add("idle", cmd_idle, "idle gaps blamed on the arrivals that ended them")
    p.add_argument("artifact")
    p.add_argument("--top", type=int, default=10)

    p = add("hpm", cmd_hpm, "simulated per-node hardware counters")
    p.add_argument("artifact")

    p = add("diff", cmd_diff, "compare two manifests with tolerances")
    p.add_argument("baseline")
    p.add_argument("candidate")
    p.add_argument("--rel-tol", type=float, default=0.10)
    p.add_argument("--util-tol", type=float, default=0.05)
    p.add_argument("--critpath-tol", type=float, default=0.10)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
