"""Artifact loading and Projections-style report builders.

The analysis half of ``python -m repro.trace``: load a ``.trace.json``
(Chrome ``trace_event`` export) or ``.manifest.json`` artifact back
into an analyzable form and produce the reports Projections would —
time profile, utilization histogram, load-imbalance summary, critical
path, message latency/size histograms.

Every report builder returns a JSON-able dict; the ``format_*``
companions render the same dict as an aligned text table, so the CLI's
``--format json`` and text outputs cannot drift apart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .core import Span, USEFUL_CATEGORIES
from .provenance import (
    critical_path,
    critical_path_summary,
    idle_attribution,
    message_stats,
)

__all__ = [
    "TraceDoc",
    "load_artifact",
    "time_profile",
    "utilization_rows",
    "utilization_histogram",
    "load_imbalance",
    "format_time_profile",
    "format_histogram",
    "format_imbalance",
    "format_critical_path",
    "format_messages",
    "format_hpm",
]


@dataclass
class TraceDoc:
    """One loaded artifact (full trace or manifest)."""

    kind: str  # "trace" | "manifest"
    path: str
    label: str = ""
    time_unit: str = ""
    spans: List[Span] = field(default_factory=list)
    track_labels: Dict[int, str] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    provenance: List[List[Any]] = field(default_factory=list)
    hpm: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: The raw manifest document (manifest artifacts only).
    manifest: Optional[Dict[str, Any]] = None

    def label_of(self, track: int) -> str:
        return self.track_labels.get(track, f"pe{track}")

    def tracks(self) -> List[int]:
        return sorted({s.track for s in self.spans})

    def categories(self) -> List[str]:
        return sorted({s.category for s in self.spans})

    def time_span(self) -> Tuple[float, float]:
        if not self.spans:
            return (0.0, 0.0)
        return (min(s.start for s in self.spans), max(s.end for s in self.spans))


def load_artifact(path: str) -> TraceDoc:
    """Load a ``.trace.json`` or ``.manifest.json`` artifact.

    Chrome traces are recognized by their ``traceEvents`` key: complete
    ("X") events become spans, thread-name metadata becomes track
    labels, the final counter ("C") samples become counters, and the
    ``provenance``/``hpm`` sections are carried through.  Any other
    JSON object is treated as a run manifest.
    """
    with open(path) as fh:
        raw = json.load(fh)
    if "traceEvents" in raw:
        doc = TraceDoc(kind="trace", path=path,
                       label=str(raw.get("otherData", {}).get("label", "")),
                       time_unit=str(raw.get("displayTimeUnit", "")))
        for ev in raw["traceEvents"]:
            ph = ev.get("ph")
            if ph == "X":
                t0 = float(ev["ts"])
                doc.spans.append(
                    Span(int(ev["tid"]), ev["name"], t0, t0 + float(ev["dur"]))
                )
            elif ph == "M" and ev.get("name") == "thread_name":
                doc.track_labels[int(ev["tid"])] = ev["args"]["name"]
            elif ph == "C":
                doc.counters[ev["name"]] = float(ev["args"]["value"])
        doc.provenance = [list(e) for e in raw.get("provenance", [])]
        doc.hpm = raw.get("hpm", {})
        return doc
    doc = TraceDoc(kind="manifest", path=path,
                   label=str(raw.get("label", "")),
                   time_unit=str(raw.get("time_unit", "")),
                   manifest=raw)
    doc.counters = dict(raw.get("counters", {}))
    doc.hpm = raw.get("hpm", {})
    for row in raw.get("utilization", []):
        if row.get("track", -1) >= 0:
            doc.track_labels[int(row["track"])] = row.get("label", "")
    return doc


# -- reports ---------------------------------------------------------------

def time_profile(spans: Sequence[Span], bins: int = 20) -> Dict[str, Any]:
    """Stacked category time per interval (Projections "time profile").

    The trace horizon is split into ``bins`` equal intervals; each
    span's duration is apportioned to the intervals it overlaps.
    """
    if not spans:
        return {"bins": [], "categories": [], "t0": 0.0, "t1": 0.0}
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    width = (t1 - t0) / bins if t1 > t0 else 1.0
    cats = sorted({s.category for s in spans})
    table: List[Dict[str, float]] = [dict.fromkeys(cats, 0.0) for _ in range(bins)]
    for s in spans:
        lo = int((s.start - t0) / width)
        hi = int((s.end - t0) / width)
        for b in range(max(lo, 0), min(hi, bins - 1) + 1):
            b0 = t0 + b * width
            b1 = b0 + width
            overlap = min(s.end, b1) - max(s.start, b0)
            if overlap > 0:
                table[b][s.category] += overlap
    return {
        "t0": t0,
        "t1": t1,
        "bin_width": width,
        "categories": cats,
        "bins": [
            {"t0": t0 + i * width, "t1": t0 + (i + 1) * width, "times": row}
            for i, row in enumerate(table)
        ],
    }


def utilization_rows(doc: TraceDoc) -> List[Dict[str, Any]]:
    """Per-track busy/useful rows, from spans or the manifest."""
    if doc.kind == "manifest":
        return list(doc.manifest.get("utilization", []))
    t0, t1 = doc.time_span()
    horizon = t1 - t0
    rows: List[Dict[str, Any]] = []
    if horizon <= 0:
        return rows
    for track in doc.tracks():
        cat_times: Dict[str, float] = {}
        for s in doc.spans:
            if s.track == track:
                cat_times[s.category] = cat_times.get(s.category, 0.0) + s.duration
        busy = sum(t for c, t in cat_times.items() if c != "idle")
        useful = sum(t for c, t in cat_times.items() if c in USEFUL_CATEGORIES)
        rows.append(
            {
                "track": track,
                "label": doc.label_of(track),
                "busy": busy / horizon,
                "useful": useful / horizon,
                "categories": cat_times,
            }
        )
    return rows


def utilization_histogram(doc: TraceDoc, bins: int = 10) -> Dict[str, Any]:
    """Histogram of tracks by busy fraction (how balanced is the run)."""
    rows = [r for r in utilization_rows(doc) if r.get("track", -1) >= 0]
    counts = [0] * bins
    for r in rows:
        b = min(int(r["busy"] * bins), bins - 1)
        counts[b] += 1
    return {
        "bins": [
            {"lo": i / bins, "hi": (i + 1) / bins, "tracks": c}
            for i, c in enumerate(counts)
        ],
        "ntracks": len(rows),
    }


def load_imbalance(doc: TraceDoc) -> List[Dict[str, Any]]:
    """Per-category max/avg time across tracks (max/avg = imbalance)."""
    rows = [r for r in utilization_rows(doc) if r.get("track", -1) >= 0]
    cats: Dict[str, List[float]] = {}
    for r in rows:
        for c, t in r.get("categories", {}).items():
            cats.setdefault(c, []).append(t)
    ntracks = len(rows)
    out = []
    for c in sorted(cats):
        vals = cats[c] + [0.0] * (ntracks - len(cats[c]))
        avg = sum(vals) / len(vals) if vals else 0.0
        mx = max(vals) if vals else 0.0
        out.append(
            {
                "category": c,
                "max": mx,
                "avg": avg,
                "imbalance": (mx / avg) if avg > 0 else 0.0,
            }
        )
    return out


def _histogram(values: Sequence[float], bins: int = 8) -> List[Dict[str, float]]:
    if not values:
        return []
    lo, hi = min(values), max(values)
    width = (hi - lo) / bins if hi > lo else 1.0
    counts = [0] * bins
    for v in values:
        b = min(int((v - lo) / width), bins - 1)
        counts[b] += 1
    return [
        {"lo": lo + i * width, "hi": lo + (i + 1) * width, "count": c}
        for i, c in enumerate(counts)
    ]


def message_report(doc: TraceDoc, bins: int = 8) -> Dict[str, Any]:
    """Message latency/size aggregates + histograms (trace artifacts)."""
    if doc.kind == "manifest":
        return dict(doc.manifest.get("messages", {}))
    from .provenance import build_messages

    stats = message_stats(doc.provenance)
    msgs = build_messages(doc.provenance).values()
    stats["latency_histogram"] = _histogram(
        [m.latency for m in msgs if m.latency is not None], bins
    )
    stats["size_histogram"] = _histogram(
        [float(m.nbytes) for m in msgs if m.sent is not None], bins
    )
    return stats


def critical_path_report(doc: TraceDoc, top: int = 10) -> Dict[str, Any]:
    """Critical-path summary + the top-k longest segments."""
    if doc.kind == "manifest":
        return {"summary": dict(doc.manifest.get("critical_path", {})), "top": []}
    path = critical_path(doc.provenance, doc.spans)
    summary = critical_path_summary(doc.provenance, doc.spans)
    ranked = sorted(path, key=lambda s: s.duration, reverse=True)[:top]
    return {
        "summary": summary,
        "path_segments": len(path),
        "top": [
            {
                "kind": s.kind,
                "track": s.track,
                "label": doc.label_of(s.track),
                "start": s.start,
                "end": s.end,
                "duration": s.duration,
                "msg_id": list(s.msg_id),
                "category": s.category,
            }
            for s in ranked
        ],
    }


def idle_report(doc: TraceDoc, top: int = 10) -> List[Dict[str, Any]]:
    """Longest idle gaps with the message each one waited for."""
    if doc.kind == "manifest":
        return []
    rows = idle_attribution(doc.provenance, doc.spans)
    rows.sort(key=lambda r: r["duration"], reverse=True)
    return rows[:top]


# -- text rendering --------------------------------------------------------

def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_time_profile(profile: Dict[str, Any], unit: str = "") -> str:
    cats = profile["categories"]
    if not cats:
        return "(no spans)"
    headers = [f"interval ({unit})" if unit else "interval"] + cats
    rows = []
    for b in profile["bins"]:
        rows.append(
            [f"{b['t0']:.0f}-{b['t1']:.0f}"]
            + [f"{b['times'].get(c, 0.0):.0f}" for c in cats]
        )
    return _table(headers, rows)


def format_histogram(hist: Dict[str, Any]) -> str:
    if not hist["bins"]:
        return "(no tracks)"
    rows = []
    peak = max((b["tracks"] for b in hist["bins"]), default=1) or 1
    for b in hist["bins"]:
        bar = "#" * int(round(30 * b["tracks"] / peak))
        rows.append(
            [f"{b['lo'] * 100:.0f}-{b['hi'] * 100:.0f}%", str(b["tracks"]), bar]
        )
    return _table(["busy", "tracks", ""], rows)


def format_imbalance(rows: List[Dict[str, Any]], unit: str = "") -> str:
    if not rows:
        return "(no category data)"
    hdr_unit = f" ({unit})" if unit else ""
    return _table(
        ["category", f"max{hdr_unit}", f"avg{hdr_unit}", "max/avg"],
        [
            [r["category"], f"{r['max']:.0f}", f"{r['avg']:.0f}",
             f"{r['imbalance']:.2f}"]
            for r in rows
        ],
    )


def format_critical_path(report: Dict[str, Any], unit: str = "") -> str:
    s = report.get("summary", {})
    lines = [
        f"critical path: length={s.get('length', 0.0):.0f} {unit} over "
        f"{s.get('nsegments', 0)} segments "
        f"(exec {s.get('exec_time', 0.0):.0f}, xfer {s.get('xfer_time', 0.0):.0f})"
    ]
    top = report.get("top", [])
    if top:
        lines.append(
            _table(
                ["kind", "where", "msg", "category", f"start ({unit})", f"dur ({unit})"],
                [
                    [t["kind"], t["label"],
                     f"({t['msg_id'][0]},{t['msg_id'][1]})",
                     t["category"] or "-",
                     f"{t['start']:.0f}", f"{t['duration']:.0f}"]
                    for t in top
                ],
            )
        )
    return "\n".join(lines)


def format_messages(stats: Dict[str, Any], unit: str = "") -> str:
    if not stats:
        return "(no provenance data)"
    lat = stats.get("latency", {})
    size = stats.get("size", {})
    lines = [
        f"messages: {stats.get('messages', 0)} stamped, "
        f"{stats.get('executed', 0)} executed, {stats.get('bytes', 0):.0f} bytes",
        f"latency ({unit}): min={lat.get('min', 0.0):.0f} "
        f"mean={lat.get('mean', 0.0):.0f} p50={lat.get('p50', 0.0):.0f} "
        f"max={lat.get('max', 0.0):.0f}",
        f"size (bytes): min={size.get('min', 0.0):.0f} "
        f"mean={size.get('mean', 0.0):.0f} p50={size.get('p50', 0.0):.0f} "
        f"max={size.get('max', 0.0):.0f}",
    ]
    for name, key in (("latency", "latency_histogram"), ("size", "size_histogram")):
        hist = stats.get(key)
        if hist:
            peak = max((b["count"] for b in hist), default=1) or 1
            rows = [
                [f"{b['lo']:.0f}-{b['hi']:.0f}", str(b["count"]),
                 "#" * int(round(30 * b["count"] / peak))]
                for b in hist
            ]
            lines.append(f"{name} histogram:")
            lines.append(_table(["bucket", "msgs", ""], rows))
    return "\n".join(lines)


def format_hpm(hpm: Dict[str, Dict[str, float]]) -> str:
    if not hpm:
        return "(no HPM data)"
    names = sorted({n for g in hpm.values() for n in g})
    rows = []
    for nid in sorted(hpm, key=lambda k: int(k)):
        g = hpm[nid]
        rows.append([f"node{nid}"] + [f"{g.get(n, 0):.0f}" for n in names])
    return _table(["node"] + names, rows)
