"""Trace exporters: Chrome ``trace_event`` JSON, utilization tables, manifests.

Three consumers, mirroring how Projections output is used around the
paper's figures:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the
  interactive view.  The JSON loads directly in ``chrome://tracing`` or
  https://ui.perfetto.dev and shows the same per-thread timelines as
  the paper's Fig. 3/10 screenshots (one Perfetto track per PE / comm
  thread, colored by activity category).

* :func:`utilization_summary` / :func:`format_utilization_table` — the
  per-PE "(total CPU utilization, useful work utilization)" summary
  printed on the paper's timelines and aggregated in Fig. 9.

* :func:`run_manifest` / :func:`write_run_manifest` — a machine-readable
  record of one traced run (counters, per-track utilization, category
  times) consumed by :mod:`repro.harness.report` and archived next to
  the benchmark outputs so each figure can cite its trace artifact.

Simulated time is in machine cycles; exporters take a ``scale`` factor
(e.g. ``1 / CYCLES_PER_US``) so exported timestamps are microseconds,
which is what the Chrome trace viewer expects of its ``ts``/``dur``
fields.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..ioutil import atomic_write_json
from .core import Tracer, USEFUL_CATEGORIES
from .provenance import build_messages, critical_path_summary, message_stats
from types import MappingProxyType

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "utilization_summary",
    "format_utilization_table",
    "run_manifest",
    "write_run_manifest",
]

#: Stable color names from the Chrome tracing palette, mapped so the
#: exported timeline echoes the paper's legend (integrate=red,
#: nonbonded=purple, pme/fft=green, comm/sched=grey tones, idle=white).
_CHROME_COLORS = MappingProxyType({
    "integrate": "terrible",         # red
    "nonbonded": "vsync_highlight_color",  # purple-ish
    "bonded": "bad",
    "pme": "good",                   # green
    "fft": "good",
    "compute": "good",
    "comm": "grey",
    "sched": "generic_work",
    "alloc": "cq_build_attempt_failed",
    "idle": "white",
})


def to_chrome_trace(
    tracer: Tracer,
    scale: float = 1.0,
    process_name: str = "repro",
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Convert a tracer to the Chrome ``trace_event`` JSON object format.

    Spans become complete ("ph": "X") events on one ``tid`` per track;
    counters become a single cumulative counter ("ph": "C") sample at
    the end of the trace; track labels become thread-name metadata
    ("ph": "M") so Perfetto shows "pe0", "commthread-..." row names.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    mark_tracks = {t for t, _, _ in tracer.marks}
    # Registered-but-unused tracks get names too: a PE that never ran a
    # span still shows up as an (empty) named row instead of vanishing.
    for track in sorted(
        set(tracer.tracks()) | mark_tracks | set(tracer.track_labels)
    ):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": track,
                "args": {"name": tracer.label_of(track)},
            }
        )
    # A span's id is its index in tracer.spans — the same id the obs
    # profiler records as span_first/span_last on its dispatch-site
    # nodes, so a hotspot in `repro.obs` cross-references straight to
    # the timeline rows it covers.
    for span_id, s in enumerate(tracer.spans):
        ev: Dict[str, Any] = {
            "name": s.category,
            "cat": s.category,
            "ph": "X",
            "ts": s.start * scale,
            "dur": s.duration * scale,
            "pid": 0,
            "tid": s.track,
            "args": {"span_id": span_id},
        }
        color = _CHROME_COLORS.get(s.category)
        if color is not None:
            ev["cname"] = color
        events.append(ev)
    for track, name, t in tracer.marks:
        # Instant events (fault injections, transport retries...) show
        # as thread-scoped arrows on their track in Perfetto.
        events.append(
            {
                "name": name,
                "cat": "mark",
                "ph": "i",
                "ts": t * scale,
                "pid": 0,
                "tid": track,
                "s": "t",
            }
        )
    # Message provenance: send->recv flow arrows on the timeline, so
    # Perfetto draws the causal edge from the sending PE's row to the
    # destination PE's row.
    for m in build_messages(tracer.provenance).values():
        if m.sent is None or m.recv is None or m.src_track is None:
            continue
        flow_id = f"{m.msg_id[0]}.{m.msg_id[1]}"
        events.append(
            {
                "name": "msg",
                "cat": "flow",
                "ph": "s",
                "id": flow_id,
                "ts": m.sent * scale,
                "pid": 0,
                "tid": m.src_track,
            }
        )
        events.append(
            {
                "name": "msg",
                "cat": "flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": m.recv * scale,
                "pid": 0,
                "tid": m.dst if m.dst is not None else m.src_track,
            }
        )
    _, t1 = tracer.time_span()
    for name in sorted(tracer.counters):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": t1 * scale,
                "pid": 0,
                "tid": 0,
                "args": {"value": tracer.counters[name]},
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    # Provenance events ride along (timestamps scaled like ts/dur) so
    # the analysis CLI can rebuild the dependency DAG from the artifact.
    if tracer.provenance:
        prov = []
        for ev in tracer.provenance:
            ev = list(ev)
            if ev[0] == "exec":
                ev[3] *= scale
                ev[4] *= scale
            else:  # send/recv carry one trailing timestamp
                ev[-1] *= scale
            prov.append(ev)
        doc["provenance"] = prov
    if tracer.hpm:
        doc["hpm"] = {str(nid): dict(g) for nid, g in sorted(tracer.hpm.items())}
    return doc


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    scale: float = 1.0,
    process_name: str = "repro",
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Write :func:`to_chrome_trace` output as JSON; returns ``path``.

    The write is atomic (temp file + rename, :mod:`repro.ioutil`): a
    cancelled job or a concurrent exporter never leaves a truncated
    trace where a valid one stood.
    """
    doc = to_chrome_trace(tracer, scale=scale, process_name=process_name,
                          metadata=metadata)
    atomic_write_json(path, doc)
    return path


def utilization_summary(tracer: Tracer) -> List[Dict[str, Any]]:
    """Per-track utilization rows (plus an ``all`` aggregate row).

    Each row: track id, label, busy fraction, useful fraction, and time
    per category — the numbers behind the paper's per-thread
    "(total, useful)" annotations and the Fig. 9 profile summary.
    """
    rows: List[Dict[str, Any]] = []
    for track in tracer.tracks():
        busy, useful = tracer.utilization(track=track)
        rows.append(
            {
                "track": track,
                "label": tracer.label_of(track),
                "busy": busy,
                "useful": useful,
                "categories": tracer.category_times(track),
            }
        )
    busy, useful = tracer.utilization()
    rows.append(
        {
            "track": -1,
            "label": "all",
            "busy": busy,
            "useful": useful,
            "categories": {},
        }
    )
    return rows


def format_utilization_table(tracer: Tracer, scale: float = 1.0, unit: str = "cyc") -> str:
    """Render :func:`utilization_summary` as an aligned text table."""
    cats = tracer.categories()
    headers = ["track", "busy%", "useful%"] + [f"{c} ({unit})" for c in cats]
    lines = ["  ".join(headers)]
    for row in utilization_summary(tracer):
        if row["label"] == "all":
            cells = [row["label"], f"{row['busy'] * 100:.1f}", f"{row['useful'] * 100:.1f}"]
            cells += ["-" for _ in cats]
        else:
            times = row["categories"]
            cells = [row["label"], f"{row['busy'] * 100:.1f}", f"{row['useful'] * 100:.1f}"]
            cells += [f"{times.get(c, 0.0) * scale:.1f}" for c in cats]
        lines.append("  ".join(cells))
    widths = [max(len(line.split("  ")[i]) for line in lines)
              for i in range(len(headers))]
    out = []
    for line in lines:
        cells = line.split("  ")
        out.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    out.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(out)


def run_manifest(
    tracer: Tracer,
    label: str = "run",
    scale: float = 1.0,
    time_unit: str = "cycles",
    **meta: Any,
) -> Dict[str, Any]:
    """Machine-readable record of one traced run.

    Consumed by :func:`repro.harness.report.format_manifest` and by the
    benchmark suite; schema (all times multiplied by ``scale``):

    ``{"label", "time_unit", "span": [t0, t1], "counters": {...},
    "utilization": [row...], "useful_categories": [...], "meta": {...}}``

    Traced runs with provenance/HPM data additionally carry
    ``"messages"`` (latency/size aggregates), ``"critical_path"``
    (length + segment counts) and ``"hpm"`` (per-node counter groups)
    sections — the quantities the trace-diff gate compares.
    """
    t0, t1 = tracer.time_span()
    rows = utilization_summary(tracer)
    for row in rows:
        row["categories"] = {
            c: t * scale for c, t in row["categories"].items()
        }
    doc = {
        "label": label,
        "time_unit": time_unit,
        "span": [t0 * scale, t1 * scale],
        "counters": {k: tracer.counters[k] for k in sorted(tracer.counters)},
        "utilization": rows,
        "useful_categories": sorted(USEFUL_CATEGORIES),
        "meta": dict(meta),
    }
    if tracer.provenance:
        stats = message_stats(tracer.provenance)
        stats["latency"] = {
            k: (v * scale if k != "count" else v)
            for k, v in stats["latency"].items()
        }
        doc["messages"] = stats
        cps = critical_path_summary(tracer.provenance, tracer.spans)
        doc["critical_path"] = {
            k: (v * scale if k in ("length", "exec_time", "xfer_time") else v)
            for k, v in cps.items()
        }
    if tracer.hpm:
        doc["hpm"] = {str(nid): dict(g) for nid, g in sorted(tracer.hpm.items())}
    return doc


def write_run_manifest(
    tracer: Tracer,
    path: str,
    label: str = "run",
    scale: float = 1.0,
    time_unit: str = "cycles",
    **meta: Any,
) -> str:
    """Write :func:`run_manifest` as JSON; returns ``path``.

    Atomic (temp file + rename): mid-job cancellation or a concurrent
    writer cannot corrupt a previously-exported manifest, and a
    serialization failure aborts without touching the destination.
    """
    doc = run_manifest(tracer, label=label, scale=scale, time_unit=time_unit, **meta)
    atomic_write_json(path, doc, indent=1)
    return path
