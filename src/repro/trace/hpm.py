"""Simulated BG/Q hardware performance counters (HPM groups).

Real BG/Q jobs read the Blue Gene Performance Monitoring unit (the
``bgpm``/HPM APIs) to count L2 atomic operations, MU descriptor and
packet traffic, FIFO depths and wakeup-unit interrupts.  This module is
the reproduction's analogue: one counter *group* per simulated node,
harvested at ``Tracer.finish()`` from the native statistics the
components maintain anyway (the same always-on ints behind the
``l2.atomic_ops`` / ``mu.*`` aggregate counters — see docs/TRACING.md,
"Design: why tracing is cheap").

Wiring: :func:`install_hpm` registers a finalizer on the tracer; the
Converse runtime calls it from ``_wire_tracer`` so any traced run gets
HPM groups for free.  Results land in two places:

* ``tracer.hpm`` — ``{node_id: {counter: value}}``, the per-node groups
  (exported in the run manifest's ``"hpm"`` section);
* ``tracer.counters`` — machine-wide ``hpm.*`` totals (sums; ``*_hwm``
  counters take the max over nodes), so the trace-diff gate covers them
  with no extra plumbing.

The counter catalogue (all per node; zero-valued counters are skipped):

========================    ===================================================
``l2.<op>``                 L2 atomic ops by type (``load``,
                            ``load_increment``, ``load_increment_bounded``,
                            ``store``, ``store_add``, ``store_or``,
                            ``store_xor``, ``store_add_bound``)
``l2.bounded_failed``       bounded load-increments that hit the bound
                            (queue-full events, §III-A)
``mu.descriptors``          descriptors processed by injection-FIFO engines
``mu.packets_injected``     packets put on the wire
``mu.packets_received``     packets that arrived at this node's MU
``mu.ififo_occupancy_hwm``  max descriptors queued in any injection FIFO
``mu.rfifo_occupancy_hwm``  max packets pending in any reception FIFO
``wu.signals``              wakeup-unit watch-condition signals (rfifos)
``wu.wakeups``              wakeup deliveries to sleeping/polling threads
``wu.latched``              signals that arrived with no armed waiter and
                            fired the next ``arm`` immediately (the
                            lost-wakeup race the latch absorbs)
``commthread.interrupts``   comm-thread wakeup interrupts taken
``commthread.rounds``       comm-thread context-advance rounds
========================    ===================================================

Machine-wide (no node attribution): ``hpm.torus.routes`` and
``hpm.torus.hops`` — routing decisions and total link hops computed by
the dimension-ordered router.

This module imports nothing from ``repro.converse`` — the runtime is
duck-typed (needs ``.machine`` and ``.processes``), keeping ``repro.trace``
free of upward dependencies.
"""

from __future__ import annotations

from typing import Any, Dict

from .core import Tracer

__all__ = ["collect_hpm", "install_hpm"]


def _node_group(node: Any) -> Dict[str, float]:
    group: Dict[str, float] = {}
    l2 = node.l2
    for op, n in sorted(l2.op_counts.items()):
        group[f"l2.{op}"] = n
    if l2.bounded_failed:
        group["l2.bounded_failed"] = l2.bounded_failed
    mu = node.mu
    group["mu.descriptors"] = mu.descriptors_processed
    group["mu.packets_injected"] = mu.packets_injected
    group["mu.packets_received"] = mu.packets_received
    group["mu.ififo_occupancy_hwm"] = max(
        (f.occupancy_hwm for f in mu._injection), default=0
    )
    group["mu.rfifo_occupancy_hwm"] = max(
        (f.occupancy_hwm for f in mu._reception), default=0
    )
    group["wu.signals"] = sum(f.wakeup.signals for f in mu._reception)
    group["wu.wakeups"] = sum(f.wakeup.wakeups for f in mu._reception)
    group["wu.latched"] = sum(f.wakeup.latched_fires for f in mu._reception)
    return {k: v for k, v in group.items() if v}


def collect_hpm(runtime: Any) -> Dict[int, Dict[str, float]]:
    """Per-node HPM counter groups for a (duck-typed) Converse runtime."""
    groups: Dict[int, Dict[str, float]] = {}
    for node in runtime.machine.nodes:
        groups[node.node_id] = _node_group(node)
    for proc in runtime.processes:
        nid = proc.node.node_id
        group = groups[nid]
        for ct in proc.comm_threads:
            group["commthread.interrupts"] = (
                group.get("commthread.interrupts", 0) + ct.wakeup_count
            )
            group["commthread.rounds"] = (
                group.get("commthread.rounds", 0) + ct.advance_rounds
            )
    return groups


def install_hpm(tracer: Tracer, runtime: Any) -> None:
    """Register the HPM finalizer on ``tracer`` for ``runtime``.

    At ``finish()`` the finalizer (re)assigns ``tracer.hpm`` and the
    ``hpm.*`` totals in ``tracer.counters`` — assignment, not addition,
    so finish() stays idempotent.
    """

    def harvest() -> None:
        groups = collect_hpm(runtime)
        tracer.hpm = groups
        totals: Dict[str, float] = {}
        for group in groups.values():
            for name, value in group.items():
                if name.endswith("_hwm"):
                    totals[name] = max(totals.get(name, 0), value)
                else:
                    totals[name] = totals.get(name, 0) + value
        torus = runtime.machine.torus
        if torus.routes_computed:
            totals["torus.routes"] = torus.routes_computed
        if torus.hops_routed:
            totals["torus.hops"] = torus.hops_routed
        for name, value in totals.items():
            if value:
                tracer.counters[f"hpm.{name}"] = value

    tracer.add_finalizer(harvest)
