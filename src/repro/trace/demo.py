"""End-to-end tracing demo: ``python -m repro.trace.demo [outdir]``.

Runs a small traced mini-NAMD simulation on the DES (2 simulated BG/Q
nodes, 2 workers + 1 communication thread per process, PME every other
step), then exports every artifact the tracing subsystem produces:

* ``trace_demo.trace.json``    — Chrome ``trace_event`` JSON; open it in
  ``chrome://tracing`` or drag it onto https://ui.perfetto.dev to get
  the interactive equivalent of the paper's Fig. 3 Projections view;
* ``trace_demo.manifest.json`` — machine-readable run manifest
  (counters + per-PE utilization);
* stdout — the ASCII timeline, the per-PE utilization table, and the
  formatted manifest.

The default output directory is ``benchmarks/output`` when run from the
repository root (falling back to the current directory), so demo
artifacts land next to the benchmark-generated ones.
"""

from __future__ import annotations

import pathlib
import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv:
        outdir = pathlib.Path(argv[0])
    else:
        default = pathlib.Path("benchmarks/output")
        outdir = default if default.parent.is_dir() else pathlib.Path(".")
    # Imported lazily: the harness pulls in the full application stack.
    from repro.harness.report import format_manifest
    from repro.harness.timelines import export_trace_artifacts, run_traced_namd

    print("running traced mini-NAMD (2 nodes, 2 workers + 1 comm thread)...")
    result = run_traced_namd(
        "trace-demo", n_atoms=500, nnodes=2, workers=2, comm_threads=1,
        pme_every=2, n_steps=3,
    )
    paths = export_trace_artifacts(result, outdir, "trace_demo")
    print(f"\n{result.n_steps} steps, {result.us_per_step:.0f} us/step "
          f"(busy {result.busy_fraction * 100:.0f}%, "
          f"useful {result.useful_fraction * 100:.0f}%)")
    print("\nper-thread timeline:")
    print(result.timeline_ascii)
    print("\nper-PE utilization:")
    print(result.utilization_table)
    print()
    print(format_manifest(result.manifest()))
    print(f"\nwrote {paths['chrome']}")
    print(f"wrote {paths['manifest']}")
    print("open the .trace.json in chrome://tracing or https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
