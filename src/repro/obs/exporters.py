"""Profile exporters: JSON, collapsed-stack flamegraph, text tables.

All disk writes go through :mod:`repro.ioutil` (atomic temp + rename),
matching every other committed artifact.  The collapsed-stack format is
the Brendan Gregg ``flamegraph.pl`` / speedscope input convention — one
``frame;frame;frame value`` line per stack, here a fixed three-level
hierarchy ``engine;<event type>;<owner>`` valued in nanoseconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .. import ioutil
from .profiler import Profile

__all__ = [
    "format_collapsed",
    "format_compare",
    "format_hotspots",
    "load_profile",
    "write_collapsed",
    "write_profile_json",
]


def write_profile_json(profile: Profile, path: Any) -> Path:
    return ioutil.atomic_write_json(
        path, profile.to_json(), indent=2, sort_keys=True, trailing_newline=True
    )


def load_profile(path: Any) -> Profile:
    with open(path, "r", encoding="utf-8") as fh:
        return Profile.from_json(json.load(fh))


def format_collapsed(profile: Profile) -> str:
    """Collapsed-stack lines: ``engine;<event_type>;<owner> <nanos>``.

    Zero-sample nodes (possible in a merged or hand-edited profile) are
    skipped — a zero-valued stack renders as a zero-width frame and
    some flamegraph tools reject it outright.
    """
    lines = [
        f"engine;{node['event_type']};{node['owner']} {node['nanos']}"
        for node in profile.nodes
        if node["nanos"] > 0
    ]
    return "\n".join(lines) + "\n" if lines else ""


def write_collapsed(profile: Profile, path: Any) -> Path:
    return ioutil.atomic_write_text(path, format_collapsed(profile))


def _fmt_ms(nanos: int) -> str:
    return f"{nanos / 1e6:.2f}ms"


def format_hotspots(profile: Profile, top: int = 10) -> str:
    """Human-readable hotspot table (the ``hotspots`` CLI verb)."""
    lines = [
        f"hotspots: {profile.label}  "
        f"(events={profile.total_count}, wall={_fmt_ms(profile.total_nanos)}, "
        f"envs={profile.envs})"
    ]
    if not profile.nodes:
        lines.append("  (empty profile)")
        return "\n".join(lines) + "\n"
    header = (
        f"  {'share':>6}  {'wall':>10}  {'count':>9}  "
        f"{'deque':>8}  {'heap':>8}  site"
    )
    lines.append(header)
    for node in profile.top(top):
        spans = ""
        if node["span_first"] >= 0:
            spans = f"  spans={node['span_first']}..{node['span_last']}"
        lines.append(
            f"  {node['share'] * 100:5.1f}%  {_fmt_ms(node['nanos']):>10}  "
            f"{node['count']:>9}  {node['deque_pops']:>8}  "
            f"{node['heap_pops']:>8}  "
            f"{node['event_type']}/{node['owner']}{spans}"
        )
    lines.append(
        f"  top-{min(top, len(profile.nodes))} coverage: "
        f"{profile.coverage(top) * 100:.1f}% of engine wall time"
    )
    return "\n".join(lines) + "\n"


def compare_profiles(
    before: Profile, after: Profile, top: int = 10
) -> List[Dict[str, Any]]:
    """Per-site share deltas between two profiles (descending |delta|).

    Shares, not raw nanoseconds: the two profiles may come from runs of
    different lengths or machines, and the question a perf PR asks is
    "which dispatch site got relatively hotter/colder".
    """
    a = {(n["event_type"], n["owner"]): n for n in before.nodes}
    b = {(n["event_type"], n["owner"]): n for n in after.nodes}
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(a) | set(b)):
        sa = a.get(key, {}).get("share", 0.0)
        sb = b.get(key, {}).get("share", 0.0)
        rows.append(
            {
                "event_type": key[0],
                "owner": key[1],
                "share_before": sa,
                "share_after": sb,
                "delta": sb - sa,
            }
        )
    rows.sort(key=lambda r: (-abs(r["delta"]), r["event_type"], r["owner"]))
    return rows[:top]


def format_compare(
    before: Profile, after: Profile, top: int = 10,
    labels: Optional[tuple] = None,
) -> str:
    la, lb = labels or (before.label or "before", after.label or "after")
    lines = [f"profile compare: {la} -> {lb}"]
    rows = compare_profiles(before, after, top=top)
    if not rows:
        lines.append("  (no sites in either profile)")
        return "\n".join(lines) + "\n"
    lines.append(f"  {'before':>8}  {'after':>8}  {'delta':>8}  site")
    for row in rows:
        lines.append(
            f"  {row['share_before'] * 100:7.2f}%  "
            f"{row['share_after'] * 100:7.2f}%  "
            f"{row['delta'] * 100:+7.2f}%  "
            f"{row['event_type']}/{row['owner']}"
        )
    return "\n".join(lines) + "\n"
