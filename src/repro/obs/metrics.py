"""Serve-layer metrics: Counter / Gauge / Histogram with a registry.

The serve runtime (PR 9) exposed jobs/sec and p50/p99 only as a one-shot
gate number.  This module makes the same quantities *live operational
metrics*: a small Prometheus-flavoured instrument set (labels, explicit
histogram buckets, text exposition) plus JSON snapshots written
atomically via :mod:`repro.ioutil`.

Two deliberate departures from a production metrics client:

* **Histograms retain their samples.**  The serve gate reports *exact*
  nearest-rank percentiles; a bucket-interpolated estimate could
  disagree with the gate number.  Retaining samples lets
  :meth:`Histogram.percentile` return exactly what
  ``repro.harness.servebench`` historically computed inline — the gate
  number and the live metric are now the same code path.  Load sizes
  here are thousands of observations, so retention is cheap; callers
  that need bounded memory read the bucket counts instead.
* **No global default registry.**  Every registry is instance-owned
  (``JobService.metrics``) — the whole-program isolation audit (G rule
  family) forbids process-wide mutable singletons, and concurrent
  services must not share counters.

Metric naming follows the dotted internal convention (``serve.queue.depth``);
the Prometheus exposition sanitizes to underscores on the way out.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import ioutil

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]

_INF = float("inf")

#: Default latency buckets (seconds): serve jobs span ~1ms slices to
#: multi-second sharded windows.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 on empty input.

    This is the canonical formula for every percentile this repo
    reports — moved here from ``repro.harness.servebench`` so the gate
    and the live histograms literally share it (satellite: gate numbers
    and metrics can never disagree).
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


def _check_labels(
    label_names: Tuple[str, ...], labels: Dict[str, Any]
) -> Tuple[str, ...]:
    if tuple(sorted(labels)) != tuple(sorted(label_names)):
        raise ValueError(
            f"labels {sorted(labels)} != declared {sorted(label_names)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Metric:
    """Common shape: a name, help text, declared label names, children.

    A metric with no label names is its own single child; with label
    names, :meth:`labels` vends (and caches) one child per label-value
    tuple.  Children are plain instruments of the same type with no
    labels of their own.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}

    def _new_child(self) -> "_Metric":
        raise NotImplementedError

    def labels(self, **labels: Any) -> "_Metric":
        if not self.label_names:
            raise ValueError(f"metric {self.name} declares no labels")
        key = _check_labels(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            self._children[key] = child = self._new_child()
        return child

    def _series(self) -> List[Tuple[Tuple[str, ...], "_Metric"]]:
        """(label values, instrument) pairs in deterministic order."""
        if not self.label_names:
            return [((), self)]
        return sorted(self._children.items())

    def _guard_unlabelled(self) -> None:
        if self.label_names:
            raise ValueError(
                f"metric {self.name} is labelled; call .labels(...) first"
            )


class Counter(_Metric):
    """Monotonically increasing count (jobs submitted, cancels, ...)."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self.value = 0.0

    def _new_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        self._guard_unlabelled()
        if amount < 0:
            raise ValueError("Counter.inc() amount must be >= 0")
        self.value += amount


class Gauge(_Metric):
    """Point-in-time value (queue depth, cache hit ratio, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self.value = 0.0

    def _new_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._guard_unlabelled()
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._guard_unlabelled()
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._guard_unlabelled()
        self.value -= amount


class Histogram(_Metric):
    """Distribution with explicit buckets *and* retained samples.

    Bucket counts are cumulative (Prometheus ``le`` semantics, with the
    implicit ``+Inf`` bucket equal to the total count); exact
    percentiles come from the retained samples via :func:`percentile`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        label_names: Sequence[str] = (),
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("Histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("Histogram bucket bounds must be unique")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0
        self.samples: List[float] = []

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self.bounds)

    def observe(self, value: float) -> None:
        self._guard_unlabelled()
        value = float(value)
        self.sum += value
        self.count += 1
        self.samples.append(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((_INF, running + self.bucket_counts[-1]))
        return out

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile over the retained samples."""
        self._guard_unlabelled()
        return percentile(self.samples, q)

    def merged_samples(self) -> List[float]:
        """All samples across children (labelled) or self (unlabelled)."""
        if not self.label_names:
            return list(self.samples)
        out: List[float] = []
        for _, child in self._series():
            out.extend(child.samples)  # type: ignore[attr-defined]
        return out


# -- exposition --------------------------------------------------------


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        if ch.isalnum() or ch == "_" or ch == ":":
            out.append(ch)
        else:
            out.append("_")
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _prom_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_prom_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_float(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Instance-owned collection of metrics with snapshot exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: the serve
    layer calls them at instrumentation sites without pre-declaring,
    and re-fetching an existing name (with a matching type) returns the
    same instrument.  Exposition is deterministic: metrics sort by name,
    series by label values.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, *args: Any, **kwargs: Any) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        labels: Sequence[str] = (),
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets, labels)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly dump of every series (deterministic order)."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            series = []
            for values, inst in metric._series():
                entry: Dict[str, Any] = {
                    "labels": dict(zip(metric.label_names, values)),
                }
                if isinstance(inst, Histogram):
                    entry["count"] = inst.count
                    entry["sum"] = inst.sum
                    entry["buckets"] = [
                        [b, n] for b, n in zip(inst.bounds, inst.bucket_counts)
                    ]
                    entry["inf"] = inst.bucket_counts[-1]
                    entry["p50"] = percentile(inst.samples, 0.50)
                    entry["p99"] = percentile(inst.samples, 0.99)
                else:
                    entry["value"] = inst.value  # type: ignore[attr-defined]
                series.append(entry)
            out[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": series,
            }
        return out

    def prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            pname = _prom_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {metric.kind}")
            for values, inst in metric._series():
                labels = _prom_labels(metric.label_names, values)
                if isinstance(inst, Histogram):
                    for bound, cum in inst.cumulative():
                        le = f'le="{_format_float(bound)}"'
                        blabels = _prom_labels(metric.label_names, values, le)
                        lines.append(f"{pname}_bucket{blabels} {cum}")
                    lines.append(
                        f"{pname}_sum{labels} {_format_float(inst.sum)}"
                    )
                    lines.append(f"{pname}_count{labels} {inst.count}")
                else:
                    value = inst.value  # type: ignore[attr-defined]
                    lines.append(f"{pname}{labels} {_format_float(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def write_json(self, path: Any) -> None:
        ioutil.atomic_write_json(
            path, self.snapshot(), indent=2, sort_keys=True, trailing_newline=True
        )

    def write_prometheus(self, path: Any) -> None:
        ioutil.atomic_write_text(path, self.prometheus_text())
