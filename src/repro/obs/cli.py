"""``python -m repro.obs`` — hotspot profile inspection CLI.

Verbs:

* ``hotspots PROFILE.json [--top N]`` — ranked dispatch-site table
* ``flame PROFILE.json [-o OUT.txt]`` — collapsed-stack flamegraph
  lines (feed to ``flamegraph.pl`` or paste into speedscope)
* ``compare BEFORE.json AFTER.json [--top N]`` — per-site share deltas

Profiles come from ``make obs-gate`` (committed baseline plus the
per-benchmark reports under ``benchmarks/output/``) or from any code
using :class:`repro.obs.ProfileSession` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .exporters import (
    format_collapsed,
    format_compare,
    format_hotspots,
    load_profile,
    write_collapsed,
)

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect engine hotspot profiles (docs/OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_hot = sub.add_parser("hotspots", help="ranked dispatch-site table")
    p_hot.add_argument("profile", help="profile JSON (from obs-gate or ProfileSession)")
    p_hot.add_argument("--top", type=int, default=10, help="rows to show")

    p_flame = sub.add_parser("flame", help="collapsed-stack flamegraph lines")
    p_flame.add_argument("profile")
    p_flame.add_argument("-o", "--out", default=None, help="write to file (atomic)")

    p_cmp = sub.add_parser("compare", help="share deltas between two profiles")
    p_cmp.add_argument("before")
    p_cmp.add_argument("after")
    p_cmp.add_argument("--top", type=int, default=10)

    args = parser.parse_args(argv)

    if args.cmd == "hotspots":
        sys.stdout.write(format_hotspots(load_profile(args.profile), top=args.top))
        return 0
    if args.cmd == "flame":
        profile = load_profile(args.profile)
        if args.out:
            write_collapsed(profile, args.out)
            print(f"wrote {args.out}")
        else:
            sys.stdout.write(format_collapsed(profile))
        return 0
    if args.cmd == "compare":
        sys.stdout.write(
            format_compare(
                load_profile(args.before),
                load_profile(args.after),
                top=args.top,
            )
        )
        return 0
    parser.error(f"unknown command {args.cmd!r}")
    return 2
