"""Host-side observability: engine hotspot profiler + serve metrics.

Two complementary layers (docs/OBSERVABILITY.md):

* :mod:`repro.obs.profiler` — a deterministic, opt-in hotspot profiler
  for the simulation engine's dispatch loop.  Cycle-neutral when off
  (``Environment.profiler is None``), ≤5% overhead when on, and the
  profiled run's simulated times are bit-identical to an unprofiled
  run — both enforced by ``make obs-gate``.
* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram instruments with
  labels, explicit buckets, JSON snapshots and Prometheus text
  exposition, instrumenting the serve runtime (``JobService.metrics``).

Everything here reads host wall time by design and never feeds it back
into scheduling (``wallclock-allow`` in pyproject justifies the D1
exemption).
"""

from .exporters import (
    compare_profiles,
    format_collapsed,
    format_compare,
    format_hotspots,
    load_profile,
    write_collapsed,
    write_profile_json,
)
from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .profiler import EngineProfiler, Profile, ProfileSession, owner_name

__all__ = [
    "Counter",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "Profile",
    "ProfileSession",
    "compare_profiles",
    "format_collapsed",
    "format_compare",
    "format_hotspots",
    "load_profile",
    "owner_name",
    "percentile",
    "write_collapsed",
    "write_profile_json",
]
