"""Deterministic engine hotspot profiler (host-side observability).

The engine's throughput ceiling is CPython dispatch itself (ROADMAP
item 2), yet until now nothing measured *which* dispatch sites dominate.
This module attributes host wall time and invocation counts to the
engine's dispatch choke points — ``step()`` callback processing keyed by
``(event type, callback owner)``, with the zero-delay-deque vs heap pop
split — so the compiled-core extraction boundary can be chosen from
measured data rather than guesses.

Design constraints, in order:

1. **Cycle-neutral when off.** ``Environment.profiler`` is ``None``
   unless a :class:`ProfileSession` is active at construction time; the
   unprofiled ``step()`` pays exactly one slot load
   (``self._profile``), already benchmarked inside the gated fast path.
   ``make obs-gate`` proves checksums are bit-identical either way.
2. **Deterministic.** Profiling only *reads* ``perf_counter_ns``; it
   never schedules from it, never perturbs pop order, and the profiled
   step (:meth:`repro.sim.engine.Environment._step_profiled`) replays
   the exact merge logic of ``step()``.  Profiled simulated times are
   bit-identical to unprofiled ones.
3. **Cheap when on.** Per-event keying costs several hundred ns in
   CPython — over budget on a ~µs dispatch — so the profiled step
   stride-samples: non-sampled events pay one countdown decrement, and
   each sampled event charges the whole interval since the previous
   sample (wall time, exact event count, pop-site split) to the
   previous sample's ``(event class, first callback)`` key.  Gaps come
   from a seeded LCG (:meth:`EngineProfiler.next_gap`), deterministic
   per run and jittered so periodic workloads cannot alias with the
   stride; ``stride=1`` is exact per-event mode.  All name resolution,
   normalization and aggregation happen at export time in
   :meth:`ProfileSession.profile`.  Budget: ≤5% overhead, enforced by
   ``make obs-gate`` (interleaved median, the tracer-overhead
   methodology).

The accumulator record layout (shared with ``engine._step_profiled``)
is ``[count, nanos, deque_pops, heap_pops, span_first, span_last]``.
The span fields hold the first/last :mod:`repro.trace` span index closed
while this site's callbacks ran — the profile↔trace correlation handle
(span ids are the span's index in ``tracer.spans``, the same id the
Chrome exporter emits as ``args.span_id``).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import engine as _engine

__all__ = ["EngineProfiler", "Profile", "ProfileSession", "owner_name"]

PROFILE_SCHEMA = 1

_DIGITS = re.compile(r"\d+")


def _norm(name: str) -> str:
    """Collapse digit runs to ``*`` so per-rank owners aggregate.

    Process names are typically instance-numbered (``pe3``,
    ``mu0-ififo2``, ``pkt-1->5``); a hotspot profile keyed on raw names
    would shatter one dispatch site into hundreds of one-sample nodes.
    """
    return _DIGITS.sub("*", name)


def owner_name(cb: Any) -> str:
    """Resolve an accumulator callback key to an aggregatable label.

    The hot path (``Environment._step_profiled``) keys on the first
    callback when it is a bound method or plain function, and degrades
    callable *instances* (constructed per event — unbounded
    cardinality) to their class.  So ``cb`` here is a method, a
    function, a class, or ``None`` (an event processed with no
    callbacks).  Methods carry their class and method name plus the
    owning object's ``name`` when it has one (normalized); functions
    use their qualname.
    """
    if cb is None:
        return "(no-callback)"
    if isinstance(cb, type):
        return cb.__name__
    bound = getattr(cb, "__self__", None)
    if bound is not None:
        fn = getattr(cb, "__func__", None)
        mname = fn.__name__ if fn is not None else getattr(cb, "__name__", "?")
        oname = getattr(bound, "name", None)
        if isinstance(oname, str) and oname:
            return f"{type(bound).__name__}.{mname}:{_norm(oname)}"
        return f"{type(bound).__name__}.{mname}"
    qual = getattr(cb, "__qualname__", None) or getattr(cb, "__name__", None)
    if isinstance(qual, str) and qual:
        return _norm(qual)
    return type(cb).__name__


class EngineProfiler:
    """Per-Environment hot-path accumulator.

    One instance is attached to each :class:`~repro.sim.engine.Environment`
    constructed while a :class:`ProfileSession` is active.  The engine's
    profiled step writes straight into :attr:`acc`; nothing else happens
    until the session aggregates.
    """

    __slots__ = ("acc", "pend", "index", "stride", "env", "_rng")

    def __init__(self, index: int = 0, stride: int = 32, env: Any = None) -> None:
        #: raw accumulator: (event class, method|function|class|None) ->
        #: [count, nanos, deque_pops, heap_pops, span_first, span_last]
        self.acc: Dict[Tuple[type, Any], List[int]] = {}
        #: pending charge opened at the last *sampled* event:
        #: [key, t0_ns, site, span_first, span_last, ev0].  The engine
        #: settles it at the next sampled step (one clock read per
        #: sample, interval charging); :meth:`flush` settles the tail.
        self.pend: List[Any] = [None, 0, 0, -1, -1, 0]
        #: ordinal of the Environment within the owning session
        self.index = index
        #: mean sampling gap in events; 1 = exact per-event mode
        self.stride = max(1, int(stride))
        #: the owning Environment (for flush() to read events_executed)
        self.env = env
        # LCG state, seeded per-profiler so sibling Environments do not
        # sample in lockstep.  No wall-clock entropy: deterministic.
        self._rng = (0x9E3779B9 ^ (index * 0x85EBCA6B)) & 0x7FFFFFFF or 1

    def next_gap(self) -> int:
        """Events until the next sample, jittered around ``stride``.

        Uniform on ``[1, 2*stride - 1]`` (mean = ``stride``) from a
        seeded LCG: deterministic for a given run, but aperiodic enough
        that a workload with a fixed event period cannot systematically
        hide behind the sampling stride.
        """
        stride = self.stride
        if stride <= 1:
            return 1
        x = (self._rng * 1103515245 + 12345) & 0x7FFFFFFF
        self._rng = x
        return 1 + x % (2 * stride - 1)

    def flush(self) -> None:
        """Charge the still-open final interval (zero-timed).

        Interval charging leaves the tail since the last sampled event
        unsettled; its wall interval has no defined end (the engine
        stopped), so it contributes its event count and pop site but no
        nanoseconds.  Idempotent — the pending cell is consumed.
        """
        pend = self.pend
        key = pend[0]
        if key is None:
            return
        rec = self.acc.get(key)
        if rec is None:
            self.acc[key] = rec = [0, 0, 0, 0, -1, -1]
        env = self.env
        gap = (env.events_executed - pend[5]) if env is not None else 1
        if gap < 1:
            gap = 1
        rec[0] += gap
        rec[pend[2]] += gap
        if pend[3] >= 0:
            if rec[4] < 0:
                rec[4] = pend[3]
            rec[5] = pend[4]
        pend[0] = None

    def total_nanos(self) -> int:
        return sum(rec[1] for rec in self.acc.values())

    def total_count(self) -> int:
        return sum(rec[0] for rec in self.acc.values())


class Profile:
    """An aggregated, name-resolved hotspot profile.

    Nodes are ``(event_type, owner)`` dispatch sites ordered by
    descending wall time (ties broken lexically, so exports are
    deterministic for a given set of measurements).  Wall-time *shares*
    are fractions of the profile's own total, so the top-N coverage the
    obs-gate checks (≥80%) is well defined without any external
    reference.
    """

    def __init__(
        self,
        label: str,
        nodes: List[Dict[str, Any]],
        envs: int,
    ) -> None:
        self.label = label
        self.envs = envs
        self.total_nanos = sum(n["nanos"] for n in nodes)
        self.total_count = sum(n["count"] for n in nodes)
        total = self.total_nanos
        for n in nodes:
            n["share"] = (n["nanos"] / total) if total else 0.0
        nodes.sort(key=lambda n: (-n["nanos"], n["event_type"], n["owner"]))
        self.nodes = nodes

    # -- aggregation ---------------------------------------------------

    @classmethod
    def from_profilers(
        cls, label: str, profilers: List[EngineProfiler]
    ) -> "Profile":
        merged: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for prof in profilers:
            prof.flush()
            for (etype, cb), rec in prof.acc.items():
                key = (etype.__name__, owner_name(cb))
                node = merged.get(key)
                if node is None:
                    merged[key] = node = {
                        "event_type": key[0],
                        "owner": key[1],
                        "count": 0,
                        "nanos": 0,
                        "deque_pops": 0,
                        "heap_pops": 0,
                        "span_first": -1,
                        "span_last": -1,
                    }
                node["count"] += rec[0]
                node["nanos"] += rec[1]
                node["deque_pops"] += rec[2]
                node["heap_pops"] += rec[3]
                if rec[4] >= 0:
                    if node["span_first"] < 0 or rec[4] < node["span_first"]:
                        node["span_first"] = rec[4]
                    if rec[5] > node["span_last"]:
                        node["span_last"] = rec[5]
        return cls(label, list(merged.values()), envs=len(profilers))

    @classmethod
    def merge(cls, label: str, profiles: List["Profile"]) -> "Profile":
        """Merge already-aggregated profiles (e.g. across gate reps)."""
        merged: Dict[Tuple[str, str], Dict[str, Any]] = {}
        envs = 0
        for prof in profiles:
            envs += prof.envs
            for src in prof.nodes:
                key = (src["event_type"], src["owner"])
                node = merged.get(key)
                if node is None:
                    merged[key] = node = {
                        "event_type": key[0],
                        "owner": key[1],
                        "count": 0,
                        "nanos": 0,
                        "deque_pops": 0,
                        "heap_pops": 0,
                        "span_first": -1,
                        "span_last": -1,
                    }
                node["count"] += src["count"]
                node["nanos"] += src["nanos"]
                node["deque_pops"] += src["deque_pops"]
                node["heap_pops"] += src["heap_pops"]
                if src["span_first"] >= 0:
                    if node["span_first"] < 0 or src["span_first"] < node["span_first"]:
                        node["span_first"] = src["span_first"]
                    if src["span_last"] > node["span_last"]:
                        node["span_last"] = src["span_last"]
        return cls(label, list(merged.values()), envs=envs)

    # -- queries -------------------------------------------------------

    def top(self, n: int = 10) -> List[Dict[str, Any]]:
        return self.nodes[:n]

    def coverage(self, n: int = 10) -> float:
        """Fraction of total wall time attributed to the top-n sites."""
        return sum(node["share"] for node in self.nodes[:n])

    # -- (de)serialization --------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "label": self.label,
            "envs": self.envs,
            "total_nanos": self.total_nanos,
            "total_events": self.total_count,
            "nodes": [dict(n) for n in self.nodes],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Profile":
        schema = data.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(f"unsupported profile schema: {schema!r}")
        nodes = []
        for src in data.get("nodes", []):
            nodes.append(
                {
                    "event_type": str(src["event_type"]),
                    "owner": str(src["owner"]),
                    "count": int(src["count"]),
                    "nanos": int(src["nanos"]),
                    "deque_pops": int(src.get("deque_pops", 0)),
                    "heap_pops": int(src.get("heap_pops", 0)),
                    "span_first": int(src.get("span_first", -1)),
                    "span_last": int(src.get("span_last", -1)),
                }
            )
        return cls(str(data.get("label", "")), nodes, envs=int(data.get("envs", 0)))


class ProfileSession:
    """Context manager that arms profiling for new Environments.

    While the session is active, every :class:`~repro.sim.engine.Environment`
    constructed gets an :class:`EngineProfiler` attached (via the
    engine's single-slot ``_PROFILER_FACTORY`` construction hook) and is
    tracked by the session; :meth:`profile` aggregates all of them into
    one name-resolved :class:`Profile`.  Sessions nest: the previous
    hook is restored on exit, and exit always disarms this session even
    if the body raised.

    Environments constructed *before* the session (or after it exits)
    are never touched — profiling is an opt-in property of construction
    time, which is what keeps the disabled path provably untouched.
    """

    def __init__(self, label: str = "profile", stride: int = 32) -> None:
        self.label = label
        #: sampling stride handed to every attached profiler (1 = exact)
        self.stride = max(1, int(stride))
        self.profilers: List[EngineProfiler] = []
        self._prev: Optional[Callable[..., Any]] = None
        self._active = False

    def _attach(self, env: Any) -> EngineProfiler:
        prof = EngineProfiler(
            index=len(self.profilers), stride=self.stride, env=env
        )
        self.profilers.append(prof)
        return prof

    def __enter__(self) -> "ProfileSession":
        self._prev = _engine._PROFILER_FACTORY[0]
        _engine._PROFILER_FACTORY[0] = self._attach
        self._active = True
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._active:
            _engine._PROFILER_FACTORY[0] = self._prev
            self._prev = None
            self._active = False

    def profile(self, label: Optional[str] = None) -> Profile:
        """Aggregate every profiled Environment into one Profile."""
        return Profile.from_profilers(label or self.label, self.profilers)
