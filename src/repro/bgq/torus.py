"""5D torus topology (§II-A).

BG/Q arranges nodes in a five-dimensional torus A x B x C x D x E with
E = 2 on real installations; compared to the 3D torus of BG/L and BG/P
this gives lower worst-case hop counts and roughly doubled bisection
bandwidth per node.  Each node has 10 torus links (2 per dimension),
each simultaneously sending and receiving at 2 GB/s.

This module is pure topology: partition shapes, coordinates,
dimension-ordered routing and hop metrics.  Link-level timing lives in
:mod:`repro.bgq.network`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple
from types import MappingProxyType

__all__ = ["Torus", "bgq_partition_shape", "PARTITION_SHAPES"]

#: Historical BG/Q partition shapes (A, B, C, D, E) by node count
#: (Mira/Sequoia block shapes; E is always 2 from 32 nodes up).
PARTITION_SHAPES: Dict[int, Tuple[int, ...]] = MappingProxyType({
    1: (1, 1, 1, 1, 1),
    2: (1, 1, 1, 1, 2),
    4: (1, 1, 1, 2, 2),
    8: (1, 1, 2, 2, 2),
    16: (1, 2, 2, 2, 2),
    32: (2, 2, 2, 2, 2),
    64: (2, 2, 4, 2, 2),
    128: (2, 2, 4, 4, 2),
    256: (4, 2, 4, 4, 2),
    512: (4, 4, 4, 4, 2),  # one midplane
    1024: (4, 4, 4, 8, 2),  # one rack
    2048: (4, 4, 8, 8, 2),
    4096: (4, 8, 8, 8, 2),
    8192: (8, 8, 8, 8, 2),
    16384: (8, 8, 16, 8, 2),
    32768: (8, 16, 16, 8, 2),
    49152: (8, 12, 16, 16, 2),  # Sequoia, 96 racks
})


def bgq_partition_shape(nnodes: int) -> Tuple[int, ...]:
    """Return the 5D partition shape for a node count.

    Known machine partition sizes come from :data:`PARTITION_SHAPES`;
    other (power-of-two) counts are factored into a balanced 5D shape
    with E capped at 2, mirroring how real blocks were carved.
    """
    if nnodes in PARTITION_SHAPES:
        return PARTITION_SHAPES[nnodes]
    if nnodes < 1:
        raise ValueError("node count must be >= 1")
    shape = [1, 1, 1, 1, 1]
    remaining = nnodes
    dim = 4  # fill E first (cap 2), then D, C, B, A round-robin
    while remaining > 1:
        if remaining % 2 != 0:
            raise ValueError(
                f"cannot derive a torus shape for non-power-of-two count {nnodes}"
            )
        if dim == 4 and shape[4] >= 2:
            dim = 3
        shape[dim] *= 2
        remaining //= 2
        dim = 3 if dim == 4 else (dim - 1 if dim > 0 else 3)
    return tuple(shape)


class Torus:
    """An N-dimensional torus with dimension-ordered routing.

    Used with 5 dimensions for BG/Q and 3 for the BG/P comparison model.
    """

    def __init__(self, shape: Sequence[int]) -> None:
        if not shape or any(s < 1 for s in shape):
            raise ValueError(f"invalid torus shape {shape!r}")
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.ndim = len(self.shape)
        self.nnodes = 1
        for s in self.shape:
            self.nnodes *= s
        # Row-major strides for rank<->coords.
        strides = []
        acc = 1
        for s in reversed(self.shape):
            strides.append(acc)
            acc *= s
        self._strides = tuple(reversed(strides))
        # Native HPM-style stats: routing decisions and total link hops
        # computed (harvested by repro.trace.hpm at finish()).
        self.routes_computed = 0
        self.hops_routed = 0

    # -- coordinates -----------------------------------------------------
    def coords(self, rank: int) -> Tuple[int, ...]:
        if not 0 <= rank < self.nnodes:
            raise ValueError(f"rank {rank} out of range")
        out = []
        for s, stride in zip(self.shape, self._strides):
            out.append((rank // stride) % s)
        return tuple(out)

    def rank(self, coords: Sequence[int]) -> int:
        if len(coords) != self.ndim:
            raise ValueError("coordinate dimensionality mismatch")
        r = 0
        for c, s, stride in zip(coords, self.shape, self._strides):
            if not 0 <= c < s:
                raise ValueError(f"coordinate {coords!r} outside {self.shape!r}")
            r += c * stride
        return r

    # -- metrics -----------------------------------------------------------
    def dim_distance(self, a: int, b: int, dim: int) -> int:
        """Signed minimal wrap distance along one dimension (b - a).

        Ties (exactly half way around) resolve to the positive direction,
        matching the deterministic router.
        """
        s = self.shape[dim]
        d = (self.coords(b)[dim] - self.coords(a)[dim]) % s
        return d if d <= s // 2 else d - s

    def hops(self, a: int, b: int) -> int:
        """Minimal hop count between two ranks."""
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for dim, s in enumerate(self.shape):
            d = abs(cb[dim] - ca[dim])
            total += min(d, s - d)
        return total

    def max_hops(self) -> int:
        """Network diameter."""
        return sum(s // 2 for s in self.shape)

    def neighbors(self, rank: int) -> List[int]:
        """All distinct nearest torus neighbours of a rank."""
        c = list(self.coords(rank))
        out = []
        for dim, s in enumerate(self.shape):
            if s == 1:
                continue
            for step in (+1, -1):
                nc = list(c)
                nc[dim] = (nc[dim] + step) % s
                r = self.rank(nc)
                if r != rank and r not in out:
                    out.append(r)
        return out

    def route(self, a: int, b: int, dim_order: Optional[Sequence[int]] = None) -> List[Tuple[int, int]]:
        """Minimal route as a list of (node, node) links.

        Default is BG/Q's deterministic dimension-ordered routing
        (A then B then C then D then E), taking the shorter wrap
        direction; ``dim_order`` traverses the dimensions in a custom
        order (the mechanism behind minimal-adaptive routing).
        """
        self.routes_computed += 1
        if a == b:
            return []
        order = range(self.ndim) if dim_order is None else dim_order
        if sorted(order) != list(range(self.ndim)):
            raise ValueError(f"dim_order must permute 0..{self.ndim - 1}")
        links: List[Tuple[int, int]] = []
        cur = list(self.coords(a))
        target = self.coords(b)
        for dim in order:
            s = self.shape[dim]
            while cur[dim] != target[dim]:
                fwd = (target[dim] - cur[dim]) % s
                step = 1 if fwd <= s - fwd else -1
                nxt = list(cur)
                nxt[dim] = (cur[dim] + step) % s
                links.append((self.rank(cur), self.rank(nxt)))
                cur = nxt
        self.hops_routed += len(links)
        return links

    def links(self) -> Iterator[Tuple[int, int]]:
        """All directed links in the torus."""
        for r in range(self.nnodes):
            for n in self.neighbors(r):
                yield (r, n)

    def bisection_links(self) -> int:
        """Directed links crossing a bisection of the longest dimension."""
        longest = max(range(self.ndim), key=lambda d: self.shape[d])
        s = self.shape[longest]
        if s < 2:
            return 0
        cross_sections = 2 if s > 2 else 1  # torus wraps: two cut planes
        per_plane = self.nnodes // s
        return per_plane * cross_sections * 2  # both directions
