"""Heap allocator models (§III-B "Scalable Memory Allocation").

On BG/Q the system malloc is the GNU arena allocator: an ``allocate``
call looks for an arena not currently locked by another thread, but a
``free`` **must acquire the mutex of the arena the buffer came from**.
When several threads free buffers allocated from the same arena (the
common case when they all receive messages from the same source), they
serialize on that arena mutex — the contention the paper measured in
Fig. 6 and eliminated with per-thread L2-atomic buffer pools
(implemented in :mod:`repro.converse.alloc`).

The model charges the software path lengths on the calling hardware
thread's core (so SMT sharing applies) and uses a real simulated mutex
per arena, so contention emerges rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, TYPE_CHECKING

from ..sim import Environment, Mutex
from .params import BGQParams, DEFAULT_PARAMS

if TYPE_CHECKING:  # pragma: no cover
    from .node import HWThread

__all__ = ["Buffer", "ArenaAllocator"]


@dataclass
class Buffer:
    """A heap buffer: remembers the arena that owns it."""

    size: int
    arena: int
    #: Which allocator produced it ("gnu" or "pool"); frees must match.
    origin: str = "gnu"
    #: Pool-allocator bookkeeping: owning thread id.
    owner_tid: int = -1


class ArenaAllocator:
    """GNU-style arena allocator shared by all threads of a process."""

    def __init__(
        self,
        env: Environment,
        params: BGQParams = DEFAULT_PARAMS,
        n_arenas: int | None = None,
    ) -> None:
        self.env = env
        self.params = params
        self.n_arenas = n_arenas if n_arenas is not None else params.gnu_arenas
        if self.n_arenas < 1:
            raise ValueError("need at least one arena")
        self.locks: List[Mutex] = [
            Mutex(env, name=f"arena{i}") for i in range(self.n_arenas)
        ]
        self.mallocs = 0
        self.frees = 0

    def home_arena(self, tid: int) -> int:
        return tid % self.n_arenas

    def malloc(self, thread: "HWThread", size: int):
        """Allocate; generator-style, returns a :class:`Buffer`.

        Mirrors glibc: probe the home arena's lock, then the others in
        order; if every arena is locked, block on the home arena.
        """
        p = self.params
        self.mallocs += 1
        home = self.home_arena(thread.tid)
        order = [home] + [i for i in range(self.n_arenas) if i != home]
        chosen = None
        for arena in order:
            yield from thread.compute(p.arena_probe_instr)
            if self.locks[arena].try_acquire():
                chosen = arena
                break
        if chosen is None:
            chosen = home
            yield from thread.compute(p.mutex_acquire_instr)
            yield from self.locks[chosen].acquire()
        # Allocation work under the arena lock.
        yield from thread.compute(p.gnu_malloc_instr)
        yield from thread.compute(p.mutex_release_instr)
        self.locks[chosen].release_nowait()
        return Buffer(size=size, arena=chosen, origin="gnu")

    def free(self, thread: "HWThread", buffer: Buffer):
        """Free; must lock the owning arena (the contention point)."""
        if buffer.origin != "gnu":
            raise ValueError("buffer was not allocated by the arena allocator")
        p = self.params
        self.frees += 1
        yield from thread.compute(p.mutex_acquire_instr)
        yield from self.locks[buffer.arena].acquire()
        yield from thread.compute(p.gnu_free_instr)
        yield from thread.compute(p.mutex_release_instr)
        self.locks[buffer.arena].release_nowait()

    # -- diagnostics -------------------------------------------------------
    def total_contention_wait(self) -> float:
        return sum(lock.stats.total_wait for lock in self.locks)

    def total_contended_acquires(self) -> int:
        return sum(lock.stats.contended for lock in self.locks)
