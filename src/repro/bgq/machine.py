"""A whole simulated BG/Q partition: nodes wired to a torus network."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim import Environment
from .network import Packet, TorusNetwork
from .node import Node
from .params import BGQParams, DEFAULT_PARAMS
from .torus import Torus, bgq_partition_shape

__all__ = ["BGQMachine"]


class BGQMachine:
    """``nnodes`` BG/Q nodes on a 5D torus partition.

    This is the hardware substrate the runtime stack is built over.  A
    packet injected by any node's MU is routed by the shared
    :class:`TorusNetwork` and delivered to the destination node's MU.
    """

    def __init__(
        self,
        env: Environment,
        nnodes: int,
        params: BGQParams = DEFAULT_PARAMS,
        shape: Optional[Sequence[int]] = None,
        routing: str = "deterministic",
        local_nodes: Optional[set] = None,
        network_factory=None,
    ) -> None:
        """``local_nodes`` (sharded runs, repro.bgq.shardnet): build only
        those node ids, leaving ``None`` placeholders elsewhere so global
        node ids keep indexing ``nodes``.  ``network_factory(env, torus,
        params, deliver)`` overrides the network construction (the
        sharded machine substitutes a request-buffering network)."""
        self.env = env
        self.params = params
        self.torus = Torus(shape if shape is not None else bgq_partition_shape(nnodes))
        if self.torus.nnodes != nnodes:
            raise ValueError(
                f"shape {self.torus.shape} has {self.torus.nnodes} nodes, "
                f"expected {nnodes}"
            )
        if network_factory is not None:
            self.network = network_factory(env, self.torus, params, self._deliver)
        else:
            self.network = TorusNetwork(
                env, self.torus, params, deliver=self._deliver, routing=routing
            )
        self.local_node_ids = (
            set(range(nnodes)) if local_nodes is None else set(local_nodes)
        )
        self.nodes: List[Optional[Node]] = []
        for i in range(nnodes):
            if i not in self.local_node_ids:
                self.nodes.append(None)
                continue
            node = Node(env, node_id=i, params=params)
            node.mu.network = self.network
            self.nodes.append(node)

    def attach_faults(self, injector) -> None:
        """Install a :class:`~repro.faults.injector.FaultInjector` at
        every choke point (network links + each node's reception FIFOs)."""
        self.network.fault = injector
        for node in self.nodes:
            if node is not None:
                node.mu.fault = injector

    def _deliver(self, packet: Packet) -> None:
        self.nodes[packet.dst].mu.receive_packet(packet)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def nnodes(self) -> int:
        return len(self.nodes)
