"""Simulated IBM Blue Gene/Q hardware substrate.

Models the BG/Q features the paper's runtime optimizations exploit:
the 4-way SMT A2 cores, L2 atomic operations, the wakeup unit, the
messaging unit with its large FIFO arrays, the 5D torus network and
the GNU arena heap allocator.
"""

from .core import Core, CoreMember
from .l2 import BOUNDED_INCREMENT_FAILED, L2AtomicUnit, L2Counter
from .machine import BGQMachine
from .memory import ArenaAllocator, Buffer
from .mu import Descriptor, InjectionFifo, MessagingUnit, ReceptionFifo
from .network import MEMFIFO, RDMA_DATA, RGET_REQUEST, Packet, TorusNetwork
from .node import HWThread, Node
from .params import BGQParams, DEFAULT_PARAMS, CYCLES_PER_US, cycles_to_us, us
from .torus import PARTITION_SHAPES, Torus, bgq_partition_shape
from .wakeup import WakeupSource

__all__ = [
    "ArenaAllocator",
    "BGQMachine",
    "BGQParams",
    "BOUNDED_INCREMENT_FAILED",
    "Buffer",
    "Core",
    "CoreMember",
    "CYCLES_PER_US",
    "DEFAULT_PARAMS",
    "Descriptor",
    "HWThread",
    "InjectionFifo",
    "L2AtomicUnit",
    "L2Counter",
    "MEMFIFO",
    "MessagingUnit",
    "Node",
    "PARTITION_SHAPES",
    "Packet",
    "RDMA_DATA",
    "RGET_REQUEST",
    "ReceptionFifo",
    "Torus",
    "TorusNetwork",
    "WakeupSource",
    "bgq_partition_shape",
    "cycles_to_us",
    "us",
]
