"""BG/Q L2-cache atomic operations (§II "Scalable Atomic support in L2").

The L2 cache on BG/Q embeds integer adders that implement atomic
operations on 64-bit words *in the cache* — load-increment, store-add,
store-or, store-xor — with far lower overhead than a mutex and the
ability to service many concurrent requests (one adder per L2 slice).

The operation the paper's lockless queues rely on is the **bounded
load-increment**: a load from a counter's special address atomically
increments the counter and returns its old value, *unless* the counter
has reached the bound stored in the adjacent memory location, in which
case the increment fails and a failure code is returned.

This module models those semantics exactly.  Atomicity is inherited
from the discrete-event engine: the read-modify-write happens inside a
single event callback, after the fixed ``l2_atomic_latency`` delay, so
concurrent requests serialize in deterministic schedule order just as
the L2 slice serializes them in hardware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import Environment
from .params import BGQParams, DEFAULT_PARAMS

__all__ = ["L2AtomicUnit", "L2Counter", "BOUNDED_INCREMENT_FAILED"]

#: Failure sentinel returned by a bounded increment that hit the bound.
#: (Hardware returns all-ones; a distinct object is clearer in Python.)
BOUNDED_INCREMENT_FAILED = object()


@dataclass
class L2Counter:
    """A 64-bit word in L2 with an optional adjacent bound word."""

    name: str
    value: int = 0
    bound: Optional[int] = None  # None = unbounded counter


class L2AtomicUnit:
    """The set of L2 atomic counters of one BG/Q node.

    All ops are generator-style: ``old = yield from l2.load_increment(c)``.
    Zero-latency *peek* variants exist for model-internal bookkeeping
    that must not perturb simulated time.
    """

    def __init__(self, env: Environment, params: BGQParams = DEFAULT_PARAMS) -> None:
        self.env = env
        self.params = params
        self._counters: Dict[str, L2Counter] = {}
        self.op_count = 0
        # Native HPM-style stats (always on, harvested at finish() by
        # repro.trace.hpm): per-op-type counts and bounded-increment
        # failures — the "queue full / queue empty" events of §III-A.
        self.op_counts: Dict[str, int] = {}
        self.bounded_failed = 0
        #: Source for auto-generated queue names (L2AtomicQueue with no
        #: explicit name).  Per-unit, not a module global: names only
        #: need to be unique within one unit's counter namespace, and a
        #: global counter would make names depend on how many unrelated
        #: environments ran earlier in the process (sharded SPMD runs
        #: build several in one interpreter).
        self.anon_queue_ids = itertools.count()

    # -- allocation ----------------------------------------------------
    def allocate(self, name: str, value: int = 0, bound: Optional[int] = None) -> L2Counter:
        if name in self._counters:
            raise ValueError(f"L2 counter {name!r} already allocated")
        c = L2Counter(name, value, bound)
        self._counters[name] = c
        return c

    def get(self, name: str) -> L2Counter:
        return self._counters[name]

    def _latency(self, op: str):
        self.op_count += 1
        counts = self.op_counts
        counts[op] = counts.get(op, 0) + 1
        return self.env.timeout(self.params.l2_atomic_latency)

    # -- atomic operations ----------------------------------------------
    def load(self, c: L2Counter):
        """Plain atomic load (also ~one L2 round trip)."""
        yield self._latency("load")
        return c.value

    def load_increment(self, c: L2Counter):
        """Unbounded load-increment: returns the pre-increment value."""
        yield self._latency("load_increment")
        old = c.value
        c.value += 1
        return old

    def load_increment_bounded(self, c: L2Counter):
        """Bounded load-increment (the lockless-queue primitive).

        Returns the old value, or :data:`BOUNDED_INCREMENT_FAILED` when
        ``c.value`` has reached ``c.bound``.
        """
        if c.bound is None:
            raise ValueError(f"counter {c.name!r} has no bound word")
        yield self._latency("load_increment_bounded")
        if c.value >= c.bound:
            self.bounded_failed += 1
            return BOUNDED_INCREMENT_FAILED
        old = c.value
        c.value += 1
        return old

    def store(self, c: L2Counter, value: int):
        yield self._latency("store")
        c.value = value

    def store_add(self, c: L2Counter, delta: int):
        yield self._latency("store_add")
        c.value += delta

    def store_or(self, c: L2Counter, mask: int):
        yield self._latency("store_or")
        c.value |= mask

    def store_xor(self, c: L2Counter, mask: int):
        yield self._latency("store_xor")
        c.value ^= mask

    def store_add_bound(self, c: L2Counter, delta: int):
        """Atomically advance the *bound* word (consumer-side dequeue)."""
        if c.bound is None:
            raise ValueError(f"counter {c.name!r} has no bound word")
        yield self._latency("store_add_bound")
        c.bound += delta

    # -- zero-latency peeks (model bookkeeping only) ---------------------
    def peek(self, c: L2Counter) -> int:
        return c.value

    def peek_bound(self, c: L2Counter) -> Optional[int]:
        return c.bound
