"""BG/Q wakeup unit (§II "Wakeup unit").

A hardware thread can execute the PowerPC ``wait`` instruction and stop
consuming core resources entirely.  The wakeup unit can be programmed to
watch a range of memory addresses or network activity (packet arrivals
in an MU reception FIFO) and deliver a low-overhead interrupt that
resumes a waiting thread.  PAMI communication threads use exactly this
mechanism: sleep when there is no messaging work, wake within ~100 ns of
a packet arrival or a work-queue post.

:class:`WakeupSource` models one programmable watch condition.  It
doubles as the generic "condition became true" notification for
*spinning* pollers (the Converse idle poll loop watches its message
queue's producer counter the same way — only the detection latency and
the core occupancy while waiting differ), hence the ``latency``
override on :meth:`arm`.

The classic lost-wakeup race (work arrives between the last poll and
the ``wait``) is handled the way the hardware handles it: a signal with
no armed waiter leaves the condition latched, and the next ``arm``
fires immediately.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim import Environment, Event
from .params import BGQParams, DEFAULT_PARAMS

__all__ = ["WakeupSource"]


class WakeupSource:
    """One watch condition (memory range, MU FIFO, or queue counter)."""

    def __init__(
        self,
        env: Environment,
        name: str = "wakeup",
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        self.env = env
        self.name = name
        self.params = params
        self._armed: List[Tuple[Event, Optional[float]]] = []
        self._latched = False
        self.signals = 0
        self.wakeups = 0
        #: Times an arm() found the condition already latched (the
        #: lost-wakeup race the latch exists for) — an HPM counter.
        self.latched_fires = 0

    def arm(self, latency: Optional[float] = None) -> Event:
        """Arm the watch; returns the event the waiter should yield on.

        ``latency`` overrides the delivery delay: the default is the
        wakeup unit's interrupt latency (for a thread in the ``wait``
        state); a spinning poller watching the same condition passes its
        poll-detection latency instead (e.g. one L2 load, ~60 cycles).

        If the condition was signalled while unarmed (latched), the
        event fires after just the delivery delay — the waiter never
        sleeps through a wakeup.
        """
        ev = self.env.event()
        if self._latched:
            self._latched = False
            self.latched_fires += 1
            self._fire(ev, latency)
        else:
            self._armed.append((ev, latency))
        return ev

    def disarm(self, ev: Event) -> bool:
        """Cancel an armed watch (waiter found work before sleeping)."""
        for i, (armed_ev, _) in enumerate(self._armed):
            if armed_ev is ev:
                del self._armed[i]
                return True
        return False

    def signal(self) -> None:
        """The watched condition occurred (packet arrival, queue post)."""
        self.signals += 1
        if self._armed:
            waiters, self._armed = self._armed, []
            for ev, latency in waiters:
                self._fire(ev, latency)
        else:
            self._latched = True

    def clear(self) -> None:
        """Drop a latched signal (waiter consumed the condition itself)."""
        self._latched = False

    def _fire(self, ev: Event, latency: Optional[float]) -> None:
        self.wakeups += 1
        delay = self.params.wakeup_latency if latency is None else latency
        env = self.env

        # Delivery is a plain event/timeout chain rather than a spawned
        # Process: a zero-delay trampoline event stands in for the old
        # delivery process's init event, and its pop creates the delay
        # timeout — so the timeout's schedule position (and with it the
        # whole event order) is identical to the Process version, minus
        # the Process/generator machinery.
        def start(_trampoline: Event) -> None:
            to = env.timeout(delay)
            to.callbacks = [deliver]

        def deliver(_timeout: Event) -> None:
            ev.succeed()
            # Stand-in for the delivery process's own completion event:
            # keeps event counts and sequence numbering exactly equal to
            # the Process-based implementation (cycle-for-cycle parity).
            Event(env).succeed()

        tramp = Event(env)
        tramp.callbacks = [start]
        tramp.succeed()
