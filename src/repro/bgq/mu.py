"""BG/Q Messaging Unit (MU) model (§II-A).

The MU moves data between node memory and the 5D torus.  It exposes
544 injection FIFOs and 272 reception FIFOs so that *many threads can
simultaneously inject and receive messages on different FIFOs* — the
hardware property behind the paper's multi-communication-thread
message-rate acceleration (§III-C/E).

Three packet types are modelled, as in hardware:

* **memory FIFO** — delivered into an MU reception FIFO at the
  destination and processed by software (PAMI dispatch);
* **RDMA read** (``rget``) — a request packet to the remote node whose
  MU streams the data back with no remote software involvement;
* **RDMA write** (``rput``) — data packets written directly to remote
  memory.

Each injection FIFO has its own descriptor engine with a fixed
per-packet processing overhead, so the *per-FIFO message rate* is
bounded and aggregate rate scales with the number of FIFOs in use.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..sim import Environment, Event
from .network import MEMFIFO, RDMA_DATA, RGET_REQUEST, Packet, TorusNetwork
from .params import BGQParams, DEFAULT_PARAMS
from .wakeup import WakeupSource

__all__ = ["Descriptor", "InjectionFifo", "ReceptionFifo", "MessagingUnit"]


class Descriptor:
    """One message-level injection request posted to an injection FIFO."""

    __slots__ = (
        "dst",
        "nbytes",
        "kind",
        "rec_fifo",
        "message",
        "injected",
        "delivered",
        "data_ififo",
        "corrupted",
    )

    def __init__(
        self,
        env: Environment,
        dst: int,
        nbytes: int,
        kind: str = MEMFIFO,
        rec_fifo: int = 0,
        message: object = None,
    ) -> None:
        if nbytes < 0:
            raise ValueError("descriptor size must be >= 0")
        self.dst = dst
        self.nbytes = nbytes
        self.kind = kind
        self.rec_fifo = rec_fifo
        self.message = message
        #: Fires when the MU engine has put the last packet on the wire.
        self.injected: Event = env.event()
        #: Fires when the last packet has arrived at the destination
        #: (for rget: when the read data has fully arrived back here).
        self.delivered: Event = env.event()
        #: For rget: which remote injection FIFO streams the data back.
        self.data_ififo: int = 0
        #: Set by the fault injector when a fragment is lost or damaged;
        #: the receive-side reliability gate discards such messages.
        self.corrupted: bool = False


class InjectionFifo:
    """One MU injection FIFO and its descriptor-processing engine."""

    def __init__(
        self,
        env: Environment,
        mu: "MessagingUnit",
        fifo_id: int,
        params: BGQParams,
    ) -> None:
        self.env = env
        self.mu = mu
        self.fifo_id = fifo_id
        self.params = params
        self._queue: Deque[Descriptor] = deque()
        self._work = env.event()
        self.descriptors_processed = 0
        self.packets_injected = 0
        #: Occupancy high-water mark (descriptors queued behind the
        #: engine) — the HPM "injection FIFO depth" counter.
        self.occupancy_hwm = 0
        env.process(self._engine(), name=f"mu{mu.node_id}-ififo{fifo_id}")

    def __len__(self) -> int:
        return len(self._queue)

    def post(self, desc: Descriptor) -> None:
        """Post a descriptor (zero software cost here; callers charge it)."""
        self._queue.append(desc)
        depth = len(self._queue)
        if depth > self.occupancy_hwm:
            self.occupancy_hwm = depth
        if not self._work.triggered:
            self._work.succeed()

    def _engine(self):
        env = self.env
        p = self.params
        while True:
            if not self._queue:
                self._work = env.event()
                yield self._work
                continue
            desc = self._queue.popleft()
            self.descriptors_processed += 1
            npackets = max(1, math.ceil(desc.nbytes / p.packet_payload_max))
            last_arrival: Optional[Event] = None
            remaining = desc.nbytes
            for seq in range(npackets):
                chunk = min(p.packet_payload_max, remaining) if remaining else 0
                remaining -= chunk
                yield env.timeout(p.mu_packet_overhead)
                pkt = Packet(
                    src=self.mu.node_id,
                    dst=desc.dst,
                    kind=desc.kind,
                    payload_bytes=chunk,
                    rec_fifo=desc.rec_fifo,
                    message=desc,
                    seq=seq,
                    is_last=(seq == npackets - 1),
                )
                last_arrival = self.mu.network.inject(pkt)
                self.packets_injected += 1
            if not desc.injected.triggered:
                desc.injected.succeed()
            if desc.kind in (MEMFIFO, RDMA_DATA) and last_arrival is not None:
                self._chain_delivery(desc, last_arrival)

    def _chain_delivery(self, desc: Descriptor, last_arrival: Event) -> None:
        def watch():
            yield last_arrival
            if not desc.delivered.triggered:
                desc.delivered.succeed()

        self.env.process(watch(), name="mu-delivery-watch")


class ReceptionFifo:
    """One MU reception FIFO: arrived memfifo packets await software.

    The FIFO owns a :class:`WakeupSource` so a communication thread can
    sleep on packet arrival, and an optional immediate callback used by
    polling contexts to count pending work.
    """

    def __init__(self, env: Environment, fifo_id: int, params: BGQParams) -> None:
        self.env = env
        self.fifo_id = fifo_id
        self.params = params
        self._packets: Deque[Packet] = deque()
        self.wakeup = WakeupSource(env, name=f"rfifo{fifo_id}", params=params)
        self.packets_received = 0
        #: Occupancy high-water mark (packets awaiting software drain) —
        #: the HPM "reception FIFO depth" counter.
        self.occupancy_hwm = 0

    def __len__(self) -> int:
        return len(self._packets)

    def push(self, packet: Packet) -> None:
        self._packets.append(packet)
        depth = len(self._packets)
        if depth > self.occupancy_hwm:
            self.occupancy_hwm = depth
        self.packets_received += 1
        self.wakeup.signal()

    def pop(self) -> Optional[Packet]:
        if self._packets:
            return self._packets.popleft()
        return None


class MessagingUnit:
    """The messaging unit of one node: FIFO pools + RDMA handling."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        params: BGQParams = DEFAULT_PARAMS,
        network: Optional[TorusNetwork] = None,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.params = params
        self.network = network  # wired by the Machine after construction
        self._injection: List[InjectionFifo] = []
        self._reception: List[ReceptionFifo] = []
        #: Dedicated FIFO used to stream rget responses (hardware path).
        self._rdma_ififo: Optional[InjectionFifo] = None
        #: Completion routing for rget responses arriving back here.
        self._pending_rgets: Dict[int, Descriptor] = {}
        self._rget_seq = 0
        #: Packets of any kind that arrived at this node's MU.  Native
        #: statistic (always counted); the Converse runtime snapshots it
        #: into the tracer's ``mu.packets_received`` counter.
        self.packets_received = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: None the reception-FIFO fault hook is one attribute test.
        self.fault = None

    # -- aggregate statistics ----------------------------------------------
    @property
    def descriptors_processed(self) -> int:
        """Descriptors processed across all injection FIFOs."""
        return sum(f.descriptors_processed for f in self._injection)

    @property
    def packets_injected(self) -> int:
        """Packets put on the wire across all injection FIFOs."""
        return sum(f.packets_injected for f in self._injection)

    # -- FIFO allocation ---------------------------------------------------
    def allocate_injection_fifo(self) -> InjectionFifo:
        if len(self._injection) >= self.params.mu_injection_fifos:
            raise RuntimeError("out of MU injection FIFOs")
        f = InjectionFifo(self.env, self, len(self._injection), self.params)
        self._injection.append(f)
        return f

    def allocate_reception_fifo(self) -> ReceptionFifo:
        if len(self._reception) >= self.params.mu_reception_fifos:
            raise RuntimeError("out of MU reception FIFOs")
        f = ReceptionFifo(self.env, len(self._reception), self.params)
        self._reception.append(f)
        return f

    @property
    def rdma_ififo(self) -> InjectionFifo:
        if self._rdma_ififo is None:
            self._rdma_ififo = self.allocate_injection_fifo()
        return self._rdma_ififo

    def reception_fifo(self, fifo_id: int) -> ReceptionFifo:
        return self._reception[fifo_id]

    # -- send paths -----------------------------------------------------------
    def make_descriptor(
        self,
        dst: int,
        nbytes: int,
        kind: str = MEMFIFO,
        rec_fifo: int = 0,
        message: object = None,
    ) -> Descriptor:
        return Descriptor(self.env, dst, nbytes, kind, rec_fifo, message)

    def post_rget(self, ififo: InjectionFifo, dst: int, nbytes: int) -> Descriptor:
        """One-sided RDMA read of ``nbytes`` from node ``dst``.

        Returns a descriptor whose ``delivered`` event fires when the
        data has fully arrived at this node.  The remote side is handled
        entirely by the remote MU (no software there), as in hardware.
        """
        self._rget_seq += 1
        token = (self.node_id << 32) | self._rget_seq
        desc = self.make_descriptor(dst, nbytes, kind=RGET_REQUEST, message=token)
        self._pending_rgets[token] = desc
        # The request itself is a single small packet.
        req = self.make_descriptor(dst, 32, kind=RGET_REQUEST, message=("rget", token, nbytes))
        desc.injected = req.injected
        ififo.post(req)
        return desc

    # -- receive path (wired as network delivery target) -------------------
    def receive_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        if packet.kind == MEMFIFO:
            fifo_id = packet.rec_fifo
            if not 0 <= fifo_id < len(self._reception):
                raise RuntimeError(
                    f"node {self.node_id}: packet for unallocated reception "
                    f"FIFO {fifo_id}"
                )
            fault = self.fault
            if fault is not None:
                action = fault.on_reception(self.node_id, fifo_id, packet)
                if action == "drop":
                    return
                if action == "dup":
                    self._reception[fifo_id].push(packet)
            self._reception[fifo_id].push(packet)
        elif packet.kind == RGET_REQUEST:
            # Remote-read request: stream the data back, no software.
            # (Packets carry their descriptor; its message holds the
            # request tuple.)
            _, token, nbytes = packet.message.message
            resp = self.make_descriptor(
                packet.src, nbytes, kind=RDMA_DATA, message=("rget-data", token)
            )
            self.rdma_ififo.post(resp)
        elif packet.kind == RDMA_DATA:
            if packet.is_last:
                msg = packet.message
                payload = getattr(msg, "message", None) or msg
                if isinstance(payload, tuple) and payload[0] == "rget-data":
                    token = payload[1]
                    pending = self._pending_rgets.pop(token, None)
                    if pending is not None and not pending.delivered.triggered:
                        pending.delivered.succeed()
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown packet kind {packet.kind!r}")
