"""A2 core model: 4-way SMT with shared issue resources (§II).

The A2 core runs four hardware threads.  Each thread can issue at most
one instruction per cycle; the core can issue two per cycle in aggregate
(one fixed-point + one floating-point), so "to fully saturate the core's
resources, at least two threads per core must be used" [paper].  Because
the core is in-order, a single thread sustains well below 1 IPC (load-use
stalls); co-resident threads hide each other's stalls but contend for the
tiny shared 16 KB L1.  The paper measured a 2.3x speedup for 4 threads
vs 1 on a core in the NAMD kernel, and the model is calibrated to that.

The model is *weighted processor sharing*:

* every activity on a core registers as a member with a weight —
  ``1.0`` for real computation or a naive spin loop, ``~1/60`` for the
  optimized idle poll that stalls on an L2 atomic load (§III-D), ``0``
  for a thread in the ``wait`` state (consumes nothing [paper §II]);
* with effective weighted occupancy ``n_eff = sum(w_i)``, per-unit-weight
  throughput is ``base_ipc / (1 + (n_eff - 1) * smt_interference)``;
* a member's rate is additionally capped by the per-thread issue limit
  and the core's aggregate issue width.

Rates are recomputed whenever membership changes, so an idle thread
entering its poll loop immediately speeds up its neighbours.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..sim import Environment, Event, Timeout
from ..sim.engine import _PENDING
from .params import BGQParams, DEFAULT_PARAMS

__all__ = ["Core", "CoreMember"]

_EPS = 1e-9


class _FirstWake:
    """Succeed ``wait`` when the first of the watched events fires.

    One instance is attached to both the chunk timeout and the core's
    membership-change event in :meth:`Core.compute`; whichever pops
    first succeeds the waiter, the loser finds it already triggered and
    does nothing.  This is an allocation-light replacement for
    ``env.any_of([timeout, change])`` with an *identical* event
    schedule: the timeout is created at the same point (same sequence
    number) and ``wait`` is succeeded exactly where the AnyOf condition
    would have been.
    """

    __slots__ = ("wait",)

    def __init__(self, wait: Event) -> None:
        self.wait = wait

    def __call__(self, _event: Event) -> None:
        w = self.wait
        if w._state == _PENDING:
            w.succeed()


class CoreMember:
    """One registered activity (compute job or occupant) on a core."""

    __slots__ = ("id", "weight")

    def __init__(self, member_id: int, weight: float) -> None:
        self.id = member_id
        self.weight = weight


class Core:
    """One A2 core: a weighted-processor-sharing issue resource."""

    def __init__(
        self,
        env: Environment,
        core_id: int = 0,
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        self.env = env
        self.core_id = core_id
        self.params = params
        # Member ids are per-core (not a class-level counter): ids only
        # key this core's membership dict, and a shared counter would
        # leak state between concurrent environments in one process.
        self._ids = itertools.count()
        self._members: Dict[int, CoreMember] = {}
        self._change: Event = env.event()
        self.instructions_retired = 0.0

    # -- membership -----------------------------------------------------
    @property
    def occupancy(self) -> float:
        """Current effective weighted occupancy n_eff."""
        return sum(m.weight for m in self._members.values())

    @property
    def n_members(self) -> int:
        return len(self._members)

    def register(self, weight: float = 1.0) -> CoreMember:
        """Add an occupant (idle spinner, busy-wait) with given weight."""
        if weight < 0:
            raise ValueError("member weight must be >= 0")
        m = CoreMember(next(self._ids), weight)
        self._members[m.id] = m
        self._notify_change()
        return m

    def unregister(self, member: CoreMember) -> None:
        if self._members.pop(member.id, None) is not None:
            self._notify_change()

    def set_weight(self, member: CoreMember, weight: float) -> None:
        """Change an occupant's weight (e.g. idle poll -> wait state)."""
        if member.id not in self._members:
            raise KeyError("member not registered on this core")
        if member.weight != weight:
            member.weight = weight
            self._notify_change()

    def _notify_change(self) -> None:
        old, self._change = self._change, self.env.event()
        old.succeed()

    # -- rate model -------------------------------------------------------
    def rate_of(self, member: CoreMember) -> float:
        """Instructions/cycle this member currently receives."""
        w = member.weight
        if w <= 0:
            return 0.0
        p = self.params
        members = self._members.values()
        n_eff = sum(m.weight for m in members)
        cap = p.thread_issue_cap
        per_unit = p.base_ipc / (1.0 + max(0.0, n_eff - 1.0) * p.smt_interference)
        rate = min(w * per_unit, cap * min(1.0, w))
        # Aggregate issue-width cap, shared proportionally to weight.
        total = 0.0
        for m in members:
            mw = m.weight
            total += min(mw * per_unit, cap * min(1.0, mw))
        width = p.core_issue_width
        if total > width:
            rate *= width / total
        return rate

    # -- work execution --------------------------------------------------
    def compute(self, instructions: float, weight: float = 1.0):
        """Run ``instructions`` of work; generator-style.

        Duration depends on who else occupies the core while the work
        runs; rates are re-evaluated at every membership change.
        """
        if instructions < 0:
            raise ValueError("instruction count must be >= 0")
        if instructions == 0:
            return 0.0
        env = self.env
        member = self.register(weight)
        started = env.now
        remaining = float(instructions)
        rate_of = self.rate_of
        try:
            while remaining > _EPS:
                rate = rate_of(member)
                if rate <= 0:
                    # Weight zero: just wait for a membership change.
                    yield self._change
                    continue
                t_done = remaining / rate
                t0 = env.now
                if t0 + t_done == t0:
                    # Residual work below the clock's float resolution:
                    # it cannot advance simulated time — call it done
                    # (guards against a zero-advance spin).
                    break
                # Manual two-way wait (see _FirstWake): cycle-identical
                # to `yield env.any_of([env.timeout(t_done), change])`.
                to = Timeout(env, t_done)
                wait = Event(env)
                wake = _FirstWake(wait)
                to.callbacks = [wake]
                self._change._add_callback(wake)
                yield wait
                remaining -= (env.now - t0) * rate
        finally:
            self.unregister(member)
        self.instructions_retired += instructions
        return env.now - started

    def occupy(self, weight: float):
        """Context-manager-like occupant registration.

        Use as::

            member = core.register(weight)   # occupy
            ...                              # spin/poll
            core.unregister(member)          # release

        Provided as a helper for call sites that want explicit control.
        """
        return self.register(weight)
