"""Blue Gene/Q machine constants.

All simulated time in this package is measured in *A2 clock cycles*
(1.6 GHz, so 1 us = 1600 cycles).  Each constant notes its provenance:
``[paper]`` = stated in the reproduced IPDPS'13 paper, ``[bgq]`` = public
BG/Q architecture literature (Chen et al. SC'11, IBM redbooks),
``[calibrated]`` = chosen so the simulated micro-benchmarks land in the
regime the paper reports (the reproduction target is shape, not absolute
microseconds).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BGQParams", "DEFAULT_PARAMS", "us", "cycles_to_us"]

#: A2 core clock [paper: "running at 1.6 GHz"].
CLOCK_HZ = 1.6e9
CYCLES_PER_US = CLOCK_HZ / 1e6  # 1600


def us(t_us: float) -> float:
    """Convert microseconds to cycles."""
    return t_us * CYCLES_PER_US


def cycles_to_us(t_cycles: float) -> float:
    """Convert cycles to microseconds."""
    return t_cycles / CYCLES_PER_US


@dataclass(frozen=True)
class BGQParams:
    """Tunable model constants for one simulated BG/Q machine.

    Frozen: the module-level ``DEFAULT_PARAMS`` instance is shared by
    every Environment in the process, so a writable field here would be
    cross-instance state (lint rule G1).  Use ``BGQParams(field=...)``
    or ``dataclasses.replace`` to vary parameters per run.
    """

    # ---- chip -------------------------------------------------------
    cores_per_node: int = 16  # [paper] 16 app cores (17th OS, 18th spare)
    threads_per_core: int = 4  # [paper]
    #: Aggregate issue capacity per core in instructions/cycle
    #: [paper: "two concurrent instructions per cycle, one fixed and one
    #: floating point"].
    core_issue_width: float = 2.0
    #: Per-hardware-thread issue cap [paper: "each thread can issue only
    #: one instruction per cycle"].
    thread_issue_cap: float = 1.0
    #: Single-thread sustained IPC for runtime/integer code (in-order A2
    #: with load-use stalls) [calibrated].
    base_ipc: float = 0.6
    #: L1-contention interference coefficient between co-resident
    #: threads; 0.2464 makes 4 threads/core = 2.3x one thread, the
    #: paper's measured NAMD ratio [paper: "speedup of 2.3x when using
    #: all four threads vs only one thread"].
    smt_interference: float = 0.2464

    # ---- caches / atomics -------------------------------------------
    l1p_latency: float = 27.0  # cycles [paper: "latency to the L1P ... about 27 cycles"]
    #: L2 atomic operation round-trip [paper: "L2 atomic counter load
    #: instructions take about 60 cycles"].
    l2_atomic_latency: float = 60.0
    #: Issue weight of a thread spinning on an L2 atomic load: it issues
    #: roughly one instruction per l2_atomic_latency cycles (§III-D).
    idle_poll_l2_weight: float = 1.0 / 60.0
    #: Issue weight of a naive spin loop (burns issue slots every cycle).
    idle_poll_naive_weight: float = 1.0
    #: Detection latency of new work for each idle-poll flavour: the L2
    #: poll notices within one atomic load; the naive spin within a few
    #: cycles (its only virtue).
    idle_poll_l2_detect: float = 60.0
    idle_poll_naive_detect: float = 4.0

    # ---- software costs (instructions, executed on the core) --------
    #: pthread mutex lock/unlock, uncontended [calibrated: ~40 ns].
    mutex_acquire_instr: float = 60.0
    mutex_release_instr: float = 40.0
    #: glibc arena malloc/free fast-path work [calibrated].
    gnu_malloc_instr: float = 180.0
    gnu_free_instr: float = 150.0
    #: Arena search: cost of probing one arena's lock on malloc.
    arena_probe_instr: float = 25.0
    #: Pool-allocator fast path around one L2 atomic op [paper §III-B].
    pool_alloc_instr: float = 40.0
    #: Number of glibc arenas available to a 64-thread process
    #: [bgq: glibc caps arenas at 8 * ncpus; contention observed when
    #: several threads free to the same arena].
    gnu_arenas: int = 8

    # ---- messaging software costs -----------------------------------
    #: Converse/Charm++ send-side software overhead per message
    #: (scheduler + envelope + PAMI call) [calibrated to ~2.9 us one-way
    #: non-SMP ping-pong].
    converse_send_instr: float = 700.0
    #: Receive-side dispatch + scheduler enqueue + handler setup.
    converse_recv_instr: float = 820.0
    #: Extra per-message overhead in SMP mode (shared runtime structures)
    #: [paper Fig. 4: SMP ~0.4 us slower than non-SMP for tiny messages].
    smp_overhead_instr: float = 550.0
    #: Extra hop cost when a message is relayed via a communication
    #: thread (post to work queue + wakeup) [paper Fig. 4/5: comm-thread
    #: mode ~0.2-0.4 us slower for tiny messages].
    commthread_post_instr: float = 300.0
    #: PAMI_Send_immediate software cost (single descriptor) vs
    #: PAMI_Send (two descriptors).
    pami_send_imm_instr: float = 350.0
    pami_send_instr: float = 550.0
    #: PAMI context advance poll when empty.
    context_advance_instr: float = 120.0
    #: Dispatch callback invocation cost.
    pami_dispatch_instr: float = 250.0
    #: Per-message cost inside a many-to-many burst (amortized: no
    #: per-message scheduler/envelope work) [paper §III-E].
    m2m_per_msg_instr: float = 180.0
    #: One-time cost of CmiDirectManytomany_start() per handle.
    m2m_start_instr: float = 400.0
    #: Threshold above which the rendezvous (Rget) protocol is used.
    rendezvous_threshold: int = 4096  # bytes [calibrated; typical eager limit]
    #: Rget handshake: header packet + acknowledgment.
    rendezvous_extra_instr: float = 800.0
    #: Intra-node pointer-exchange delivery cost (enqueue + dequeue +
    #: scheduler) [paper Fig. 5: ~1.1 us one way in SMP mode].
    intranode_deliver_instr: float = 880.0
    #: Payload copy cost (pack at send, unpack into the user buffer at
    #: receive): bytes per instruction at L1 streaming bandwidth.
    memcpy_bytes_per_instr: float = 8.0
    #: Charm++ entry-method scheduling overhead above raw Converse
    #: handler dispatch.
    charm_entry_instr: float = 350.0

    # ---- messaging unit ----------------------------------------------
    mu_injection_fifos: int = 544  # [paper]
    mu_reception_fifos: int = 272  # [paper]
    packet_payload_max: int = 512  # bytes/packet [bgq]
    packet_header_bytes: int = 32  # [bgq; source of the 1.8/2.0 efficiency]
    #: MU descriptor fetch-and-process overhead per packet per FIFO
    #: engine [calibrated: bounds per-FIFO message rate].
    mu_packet_overhead: float = 120.0  # cycles
    #: Interrupt delivery latency from wakeup unit to waiting thread.
    wakeup_latency: float = 160.0  # cycles [bgq: ~100 ns wakeup]

    # ---- network ------------------------------------------------------
    torus_dims: int = 5  # [paper]
    link_bandwidth: float = 2.0e9  # B/s raw [paper]
    link_effective_bandwidth: float = 1.8e9  # B/s [paper]
    hop_latency: float = 64.0  # cycles/hop (~40 ns) [bgq SC'11]
    #: Fixed network ingress/egress latency (MU to torus and back).
    nic_latency: float = 800.0  # cycles (~0.5 us) [calibrated]

    # ---- derived -------------------------------------------------------
    @property
    def threads_per_node(self) -> int:
        return self.cores_per_node * self.threads_per_core

    @property
    def bytes_per_cycle(self) -> float:
        """Effective link payload bandwidth in bytes/cycle."""
        return self.link_effective_bandwidth / CLOCK_HZ

    def instr_cycles_solo(self, instructions: float) -> float:
        """Cycles to run `instructions` alone on a core (no SMT sharing)."""
        return instructions / self.base_ipc


DEFAULT_PARAMS = BGQParams()
