"""Shard-boundary routing for the sharded torus (docs/SCALING.md).

The serial :class:`~repro.bgq.network.TorusNetwork` reserves links
*globally and instantly* at injection time — exactly the property a
naively partitioned network loses.  Rather than approximate it with
per-shard link state (which diverges from the serial trajectory), the
sharded engine keeps link reservation **central**: each shard's
:class:`ShardTorusNetwork` buffers every non-loopback injection as a
timestamped request, and at every window barrier the
:class:`ReservationFabric` replays all buffered requests through the
serial cut-through arithmetic (`TorusNetwork.reserve_route`, same
float-op order) in the canonical ``(inject time, src node, per-node
counter)`` order — the exact order the serial network's own deferred
reservation flush uses, so it is shard-count independent.  The window
never exceeds the lookahead (NIC latency), so requests of window *k*
are all known — and globally ordered — before any of their arrivals
(in window *k+1* or later) execute.

Each granted request becomes *external events* carrying the canonical
ordering key (see :mod:`repro.sim.shard`): the
packet delivery on the destination shard (``machine._deliver`` → the
``MU.receive_packet`` choke point, the same seam the fault injector
uses) and the sender's completion event on the source shard.  When
both ends live on one shard, a single combined event preserves the
serial deliver-then-complete order.

Loopback (``src == dst``) packets never cross a shard boundary and
keep the serial in-process path.  Unsupported under sharding (they
read cross-shard global state): adaptive routing, fault injection.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim import Environment, Event
from ..sim.shard import ShardEnvironment, _SeqKey
from .machine import BGQMachine
from .network import MEMFIFO, Packet, TorusNetwork
from .params import BGQParams, DEFAULT_PARAMS
from .torus import Torus, bgq_partition_shape

__all__ = [
    "ShardTorusNetwork",
    "ReservationFabric",
    "ShardedBGQMachine",
    "ShardClient",
    "shard_of_node",
]


def shard_of_node(node_id: int, nnodes: int, nshards: int) -> int:
    """Contiguous-block node→shard map (``nnodes % nshards == 0``)."""
    return node_id // (nnodes // nshards)


class _SendRequest:
    """One buffered cross-node injection awaiting barrier reservation.

    ``(t, node, n)`` — inject time, source node, per-node inject
    counter — is the canonical reservation order, identical to the
    serial network's deferred-flush order
    (:meth:`repro.bgq.network.TorusNetwork._flush_reservations`).
    """

    __slots__ = ("t", "node", "n", "packet", "done")

    def __init__(self, t: float, node: int, n: int, packet: Packet, done: Event) -> None:
        self.t = t
        self.node = node
        self.n = n
        self.packet = packet
        self.done = done


class _WirePacket:
    """Serialization shim: just enough packet for `_serialization`."""

    __slots__ = ("payload_bytes",)

    def __init__(self, payload_bytes: int) -> None:
        self.payload_bytes = payload_bytes


class ShardTorusNetwork(TorusNetwork):
    """One shard's view of the torus: buffers routed sends for the fabric.

    Loopback injections and all statistics behave exactly like the
    serial network; only `_inject_routed` changes, from
    reserve-and-fly to buffer-for-barrier.
    """

    def __init__(
        self,
        env: ShardEnvironment,
        torus: Torus,
        params: BGQParams,
        deliver,
        shard_id: int,
    ) -> None:
        super().__init__(env, torus, params, deliver=deliver, routing="deterministic")
        self.shard_id = shard_id
        self._pending: List[_SendRequest] = []

    def _inject_routed(self, packet: Packet, done: Event) -> Event:
        if self.routing != "deterministic":  # pragma: no cover - guarded in ctor
            raise NotImplementedError(
                "adaptive routing keys its dimension permutation on a global "
                "packet counter and is not supported under sharding"
            )
        if self.fault is not None:
            raise NotImplementedError(
                "fault injection is not supported under sharding "
                "(see docs/SCALING.md)"
            )
        node = packet.src
        n = self._node_inject_seq.get(node, 0)
        self._node_inject_seq[node] = n + 1
        self._pending.append(_SendRequest(self.env.now, node, n, packet, done))
        return done


class ReservationFabric:
    """Central link-reservation state shared by every shard.

    Owns the global busy-until link timeline and replays buffered
    requests in deterministic ``(inject_time, shard, counter)`` order,
    running the *identical* reservation arithmetic as the serial
    network (the unbound ``TorusNetwork.reserve_route`` /
    ``_serialization`` methods are invoked with the fabric supplying
    ``_link_free``/``params``) so arrival times are bit-identical.

    Used two ways: `flush` for in-process shards (registered via
    `register_shard`, externals scheduled directly), and
    `process` for the subprocess transport (pure arithmetic over
    wire-format requests; the parent ships the resulting external
    records back to the shard children).
    """

    def __init__(
        self,
        nnodes: int,
        nshards: int,
        params: BGQParams = DEFAULT_PARAMS,
        shape: Optional[Sequence[int]] = None,
    ) -> None:
        if nshards < 1:
            raise ValueError("need at least one shard")
        if nnodes % nshards:
            raise ValueError(
                f"nnodes={nnodes} must divide evenly into nshards={nshards}"
            )
        self.nnodes = nnodes
        self.nshards = nshards
        self.params = params
        self.torus = Torus(shape if shape is not None else bgq_partition_shape(nnodes))
        self._link_free: Dict[Tuple[int, int], float] = {}
        #: shard_id -> (env, machine, network); in-process transport only.
        self.shards: Dict[int, Tuple[Any, Any, ShardTorusNetwork]] = {}
        self.requests_processed = 0

    # -- protocol constants -----------------------------------------------
    @property
    def lookahead(self) -> float:
        """Minimum cross-node packet latency: NIC + first hop (+ ser > 0)."""
        return self.params.nic_latency + self.params.hop_latency

    @property
    def window(self) -> float:
        """The synchronization window: the NIC latency, safely below
        the lookahead, so barrier-exchanged arrivals are always in the
        destination shard's future."""
        return self.params.nic_latency

    def shard_of(self, node_id: int) -> int:
        return shard_of_node(node_id, self.nnodes, self.nshards)

    # -- in-process transport ----------------------------------------------
    def register_shard(self, shard_id: int, env, machine, network: ShardTorusNetwork) -> None:
        if shard_id in self.shards:
            raise ValueError(f"shard {shard_id} already registered")
        self.shards[shard_id] = (env, machine, network)

    def pending(self) -> int:
        return sum(len(net._pending) for _, _, net in self.shards.values())

    def flush(self) -> int:
        """Reserve + schedule every buffered request (window barrier)."""
        reqs: List[_SendRequest] = []
        for _, _, net in self.shards.values():
            if net._pending:
                reqs.extend(net._pending)
                net._pending.clear()
        if not reqs:
            return 0
        # Canonical global order — chronological, same-time ties by
        # (src node, per-node counter): exactly the serial network's
        # deferred-flush order, shard-count independent.
        reqs.sort(key=lambda r: (r.t, r.node, r.n))
        for r in reqs:
            pkt = r.packet
            route = self.torus.route(pkt.src, pkt.dst, dim_order=None)
            ser = TorusNetwork._serialization(self, pkt)
            arrival, _stall = TorusNetwork.reserve_route(self, route, ser, r.t)
            # Origins >= nshards sort external events after any local
            # event key (origin = shard id < nshards) at an equal heap
            # time — mirroring the serial engine, where the flight
            # timeout is created at the reservation flush, after every
            # local event that existed at the inject timestamp.
            key = _SeqKey(r.t, self.nshards + r.node, r.n, None)
            src_shard = self.shard_of(pkt.src)
            dst_shard = self.shard_of(pkt.dst)
            src_env = self.shards[src_shard][0]
            dst_env, dst_machine, _ = self.shards[dst_shard]
            if dst_shard == src_shard:
                # One event, serial order: deliver, then complete the
                # sender (two same-key heap entries would collide).
                def fire(pkt=pkt, done=r.done, machine=dst_machine):
                    machine._deliver(pkt)
                    done.succeed(pkt)

                src_env.schedule_external(arrival, key, fire)
            else:
                dst_env.schedule_external(
                    arrival,
                    key,
                    lambda pkt=pkt, machine=dst_machine: machine._deliver(pkt),
                )
                src_env.schedule_external(
                    arrival,
                    key,
                    lambda done=r.done, pkt=pkt: done.succeed(pkt),
                )
        self.requests_processed += len(reqs)
        return len(reqs)

    # -- subprocess transport ------------------------------------------------
    def process(self, requests: List[dict]) -> Tuple[Dict[int, list], Dict[int, list]]:
        """Wire-format flush: reserve and emit external records.

        Returns ``(externals_by_shard, arrivals_by_shard)`` — the
        parent forwards the records to each shard child
        (:meth:`ShardClient.apply_external`) and uses the arrival times
        to tighten its view of each child's next event.
        """
        requests.sort(key=lambda r: tuple(r["key"]))
        externals: Dict[int, list] = {}
        arrivals: Dict[int, list] = {}
        for r in requests:
            route = self.torus.route(r["src"], r["dst"], dim_order=None)
            ser = TorusNetwork._serialization(self, _WirePacket(r["payload_bytes"]))
            arrival, _stall = TorusNetwork.reserve_route(self, route, ser, r["t"])
            key3 = tuple(r["key"])  # (t, src_node, per-node counter)
            src_shard = self.shard_of(r["src"])
            dst_shard = self.shard_of(r["dst"])
            if dst_shard == src_shard:
                externals.setdefault(src_shard, []).append(("both", key3, arrival))
            else:
                externals.setdefault(dst_shard, []).append(
                    ("deliver", key3, arrival, r)
                )
                externals.setdefault(src_shard, []).append(("grant", key3, arrival))
                arrivals.setdefault(dst_shard, []).append(arrival)
            arrivals.setdefault(src_shard, []).append(arrival)
        self.requests_processed += len(requests)
        return externals, arrivals


class ShardedBGQMachine(BGQMachine):
    """One shard's slice of a BG/Q partition.

    Builds the full torus geometry but only the nodes of this shard's
    contiguous block; remote slots in ``nodes`` are ``None``
    placeholders so global node ids keep working.  The network is a
    :class:`ShardTorusNetwork` wired to ``fabric`` (pass ``None`` in a
    subprocess child — the parent owns the fabric there).
    """

    def __init__(
        self,
        env: ShardEnvironment,
        nnodes: int,
        shard_id: int,
        nshards: int,
        fabric: Optional[ReservationFabric] = None,
        params: BGQParams = DEFAULT_PARAMS,
        shape: Optional[Sequence[int]] = None,
    ) -> None:
        if nnodes % nshards:
            raise ValueError(
                f"nnodes={nnodes} must divide evenly into nshards={nshards}"
            )
        self.shard_id = shard_id
        self.nshards = nshards
        block = nnodes // nshards
        local = set(range(shard_id * block, (shard_id + 1) * block))
        super().__init__(
            env,
            nnodes,
            params,
            shape=shape,
            local_nodes=local,
            network_factory=lambda e, torus, p, deliver: ShardTorusNetwork(
                e, torus, p, deliver, shard_id=shard_id
            ),
        )
        if fabric is not None:
            fabric.register_shard(shard_id, env, self, self.network)

    def attach_faults(self, injector) -> None:
        raise NotImplementedError(
            "fault injection is not supported on a sharded machine: the "
            "injector keys decisions on global packet/message counters "
            "(see docs/SCALING.md)"
        )


class ShardClient:
    """Child-side adapter for :func:`repro.sim.shard.run_sharded_subprocesses`.

    Converts buffered send requests to wire format (and remembers their
    completion events), and applies the parent's external records.  The
    wire format carries only value payloads, so the subprocess
    transport supports memory-FIFO (eager active-message) traffic —
    benchmarks whose payloads hold object references (e.g. the m2m slot
    back-channel) must use the in-process transport instead.
    """

    def __init__(self, env: ShardEnvironment, machine: ShardedBGQMachine,
                 done: Optional[Event] = None, result_fn=None) -> None:
        self.env = env
        self.machine = machine
        self.done = done
        self._result_fn = result_fn
        self._awaiting: Dict[tuple, Tuple[Event, Packet]] = {}

    def drain_requests(self) -> List[dict]:
        out: List[dict] = []
        net = self.machine.network
        for r in net._pending:
            pkt = r.packet
            if pkt.kind != MEMFIFO:
                raise NotImplementedError(
                    f"subprocess transport cannot ship {pkt.kind!r} packets "
                    "(RDMA flows carry object references); use the "
                    "in-process transport"
                )
            payload = pkt.message.message  # Descriptor -> AMPayload
            key3 = (r.t, r.node, r.n)
            self._awaiting[key3] = (r.done, pkt)
            out.append(
                {
                    "key": key3,
                    "t": r.t,
                    "src": pkt.src,
                    "dst": pkt.dst,
                    "payload_bytes": pkt.payload_bytes,
                    "rec_fifo": pkt.rec_fifo,
                    "seq": pkt.seq,
                    "is_last": pkt.is_last,
                    "payload": (
                        payload.dispatch_id,
                        payload.data,
                        payload.nbytes,
                        payload.src_endpoint,
                        payload.seq,
                    ),
                }
            )
        net._pending.clear()
        return out

    def _key(self, key3) -> _SeqKey:
        # Same origin offset as ReservationFabric.flush: externals sort
        # after local event keys at an equal heap time.
        t, node, n = key3
        return _SeqKey(t, self.machine.nshards + node, n, None)

    def apply_external(self, rec: tuple) -> None:
        kind = rec[0]
        if kind == "deliver":
            _, key3, arrival, wire = rec
            pkt = _rebuild_packet(wire)
            self.env.schedule_external(
                arrival,
                self._key(key3),
                lambda: self.machine._deliver(pkt),
            )
        elif kind == "grant":
            _, key3, arrival = rec
            done, pkt = self._awaiting.pop(tuple(key3))
            self.env.schedule_external(
                arrival, self._key(key3), lambda: done.succeed(pkt)
            )
        elif kind == "both":
            _, key3, arrival = rec
            done, pkt = self._awaiting.pop(tuple(key3))

            def fire():
                self.machine._deliver(pkt)
                done.succeed(pkt)

            self.env.schedule_external(arrival, self._key(key3), fire)
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unknown external record {kind!r}")

    def result(self) -> Any:
        return self._result_fn() if self._result_fn is not None else None


class _WireDescriptor:
    """Reconstructed descriptor: just what the receive path reads."""

    __slots__ = ("message", "corrupted")

    def __init__(self, message: Any) -> None:
        self.message = message
        self.corrupted = False


def _rebuild_packet(wire: dict) -> Packet:
    from ..pami.context import AMPayload

    dispatch_id, data, nbytes, src_endpoint, seq = wire["payload"]
    payload = AMPayload(dispatch_id, data, nbytes, tuple(src_endpoint))
    payload.seq = seq
    return Packet(
        src=wire["src"],
        dst=wire["dst"],
        kind=MEMFIFO,
        payload_bytes=wire["payload_bytes"],
        rec_fifo=wire["rec_fifo"],
        message=_WireDescriptor(payload),
        seq=wire["seq"],
        is_last=wire["is_last"],
    )
