"""One BG/Q compute node: cores, hardware threads, L2, MU, allocator."""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment
from .core import Core
from .l2 import L2AtomicUnit
from .memory import ArenaAllocator
from .mu import MessagingUnit
from .params import BGQParams, DEFAULT_PARAMS
from .wakeup import WakeupSource

__all__ = ["HWThread", "Node"]


class HWThread:
    """One of the 64 hardware threads of a node.

    Runtime code runs *on* a hardware thread: all software path lengths
    are charged through :meth:`compute` so that SMT sharing on the
    owning core applies, and :meth:`wait_on` models the PowerPC ``wait``
    instruction (zero core occupancy until a wakeup-unit interrupt).
    """

    def __init__(self, env: Environment, node: "Node", core: Core, slot: int, tid: int) -> None:
        self.env = env
        self.node = node
        self.core = core
        self.slot = slot  # 0..3 within the core
        self.tid = tid  # 0..63 within the node
        self.instructions = 0.0

    def compute(self, instructions: float, weight: float = 1.0):
        """Execute ``instructions`` on this thread's core.

        Returns the core's compute generator directly — call sites drive
        it with ``yield from`` exactly as before, but each charge no
        longer pays a delegating wrapper frame.  This is the hottest
        call in the simulator: every queue operation, handler dispatch
        and memcpy in ``queues.py``/``converse/`` is charged through it,
        so batching the accounting here (one attribute add, then the
        core generator) measurably shortens the DES hot loop.
        """
        self.instructions += instructions
        return self.core.compute(instructions, weight=weight)

    def wait_on(self, source: WakeupSource):
        """Enter the ``wait`` state until the wakeup source fires.

        While waiting the thread consumes no core resources [paper §II]:
        no core member is registered at all.
        """
        ev = source.arm()
        yield ev

    def spin(self, duration: float, weight: float):
        """Occupy the core at ``weight`` for a fixed duration (poll loop)."""
        member = self.core.register(weight)
        try:
            yield self.env.timeout(duration)
        finally:
            self.core.unregister(member)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HWThread node={self.node.node_id} tid={self.tid}>"


class Node:
    """A BG/Q compute node: 16 A2 cores x 4 threads + L2 + MU + heap."""

    def __init__(
        self,
        env: Environment,
        node_id: int = 0,
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.params = params
        self.cores: List[Core] = [
            Core(env, core_id=i, params=params) for i in range(params.cores_per_node)
        ]
        self.threads: List[HWThread] = []
        tid = 0
        for core in self.cores:
            for slot in range(params.threads_per_core):
                self.threads.append(HWThread(env, self, core, slot, tid))
                tid += 1
        self.l2 = L2AtomicUnit(env, params)
        self.mu = MessagingUnit(env, node_id, params)
        self.arena_allocator = ArenaAllocator(env, params)

    def thread(self, tid: int) -> HWThread:
        return self.threads[tid]

    @property
    def n_threads(self) -> int:
        return len(self.threads)
