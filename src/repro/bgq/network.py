"""Link-level torus network model (§II-A).

Each torus link sends and receives simultaneously at 2 GB/s raw; packet
header overhead (32 of every 544 bytes) caps achievable payload
throughput at ~1.8 GB/s [paper].  Routing is deterministic
dimension-ordered (see :class:`~repro.bgq.torus.Torus`).

Packets use *cut-through* switching: a packet occupies each link on its
route for its serialization time, with reservations pipelined one hop
latency apart.  We model each directed link as a busy-until timeline
(no per-byte events), which captures both serialization and link
contention at a cost of O(hops) per packet — cheap enough to simulate
the node counts the DES benchmarks use, while the analytic
:mod:`repro.perfmodel` covers the paper's largest runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..sim import Environment, Event
from .params import BGQParams, DEFAULT_PARAMS
from .torus import Torus

__all__ = ["Packet", "TorusNetwork", "MEMFIFO", "RGET_REQUEST", "RDMA_DATA"]

# Packet kinds
MEMFIFO = "memfifo"  # delivered into a reception FIFO, software-processed
RGET_REQUEST = "rget-request"  # remote-read request, handled by remote MU
RDMA_DATA = "rdma-data"  # RDMA payload, written directly to memory


@dataclass
class Packet:
    """One torus packet (up to 512 B payload + 32 B header)."""

    src: int
    dst: int
    kind: str
    payload_bytes: int
    #: Reception FIFO id at the destination (memfifo packets).
    rec_fifo: int = 0
    #: Opaque message context carried through the network.
    message: object = None
    #: Index of this packet within its message, and whether it is last.
    seq: int = 0
    is_last: bool = True

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes  # header accounted via effective bandwidth


class TorusNetwork:
    """The torus interconnect: routes packets, models link contention.

    ``deliver`` is the callback invoked (at the arrival time) with each
    packet at its destination; the machine wires it to the destination
    node's messaging unit.
    """

    def __init__(
        self,
        env: Environment,
        torus: Torus,
        params: BGQParams = DEFAULT_PARAMS,
        deliver: Optional[Callable[[Packet], None]] = None,
        routing: str = "deterministic",
    ) -> None:
        if routing not in ("deterministic", "adaptive"):
            raise ValueError(f"unknown routing mode {routing!r}")
        self.env = env
        self.torus = torus
        self.params = params
        self.deliver = deliver
        #: "deterministic" = fixed dimension order (BG/Q default);
        #: "adaptive" = per-packet dimension-order permutation (a model
        #: of BG/Q's dynamic routing — spreads all-to-all traffic over
        #: more links).  The permutation is a deterministic hash of the
        #: packet count so simulations stay reproducible.
        self.routing = routing
        #: busy-until time per directed link
        self._link_free: Dict[Tuple[int, int], float] = {}
        self.packets_sent = 0
        self.bytes_sent = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: None (the default) the fault hook below is a single attribute
        #: test and the trajectory is identical to a fault-free build.
        self.fault = None

    def _dim_order(self) -> Optional[list]:
        if self.routing == "deterministic":
            return None
        ndim = self.torus.ndim
        order = list(range(ndim))
        # Cheap deterministic shuffle keyed by the packet counter.
        h = self.packets_sent * 2654435761 % (2**32)
        for i in range(ndim - 1, 0, -1):
            j = h % (i + 1)
            order[i], order[j] = order[j], order[i]
            h //= i + 1
        return order

    def _serialization(self, packet: Packet) -> float:
        """Cycles to stream a packet across one link."""
        p = self.params
        wire = packet.payload_bytes + p.packet_header_bytes
        return wire / (p.link_bandwidth / 1.6e9)  # raw link rate, cycles

    def inject(self, packet: Packet) -> Event:
        """Send a packet; the returned event fires on arrival at dst.

        Must be called at the moment the MU puts the packet on the wire.
        """
        env = self.env
        done = env.event()
        self.packets_sent += 1
        self.bytes_sent += packet.payload_bytes
        if packet.src == packet.dst:
            # MU loopback (sends between processes on one node, or to
            # self): no torus links, just the MU ingress/egress path.
            def loop():
                yield env.timeout(self.params.nic_latency)
                if self.deliver is not None:
                    self.deliver(packet)
                done.succeed(packet)

            env.process(loop(), name=f"pkt-loopback-{packet.src}")
            return done

        route = self.torus.route(packet.src, packet.dst, dim_order=self._dim_order())
        fault = self.fault
        action = fault.on_route(packet, route) if fault is not None else None
        ser = self._serialization(packet)
        p = self.params
        # Cut-through reservation: the head advances one hop_latency per
        # link; each link is busy for the serialization time starting
        # when the head reaches it (or when the link frees, if later —
        # upstream then stalls, which we conservatively roll into the
        # arrival time).
        t_head = env.now + p.nic_latency
        stall = 0.0
        for link in route:
            free_at = self._link_free.get(link, 0.0)
            start = max(t_head, free_at)
            stall += start - t_head
            self._link_free[link] = start + ser
            t_head = start + p.hop_latency
        arrival = t_head + ser

        if action is not None:
            if action.drop:
                # Lost in flight: links were still occupied up to the
                # loss point (we conservatively charge the full route),
                # but the packet never arrives and ``done`` never fires.
                return done
            arrival += action.extra_delay
            if action.dup_gap is not None:
                dup_at = arrival + action.dup_gap

                def fly_dup():
                    yield env.timeout(dup_at - env.now)
                    if self.deliver is not None:
                        self.deliver(packet)

                env.process(
                    fly_dup(), name=f"pkt-dup-{packet.src}->{packet.dst}"
                )

        def fly():
            yield env.timeout(arrival - env.now)
            if self.deliver is not None:
                self.deliver(packet)
            done.succeed(packet)

        env.process(fly(), name=f"pkt-{packet.src}->{packet.dst}")
        return done

    def link_utilization(self) -> Dict[Tuple[int, int], float]:
        """Busy-until horizon per link (diagnostics)."""
        return dict(self._link_free)
