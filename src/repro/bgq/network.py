"""Link-level torus network model (§II-A).

Each torus link sends and receives simultaneously at 2 GB/s raw; packet
header overhead (32 of every 544 bytes) caps achievable payload
throughput at ~1.8 GB/s [paper].  Routing is deterministic
dimension-ordered (see :class:`~repro.bgq.torus.Torus`).

Packets use *cut-through* switching: a packet occupies each link on its
route for its serialization time, with reservations pipelined one hop
latency apart.  We model each directed link as a busy-until timeline
(no per-byte events), which captures both serialization and link
contention at a cost of O(hops) per packet — cheap enough that the
sharded engine (docs/SCALING.md) simulates the paper's 128-512 node
partitions for real, with :mod:`repro.perfmodel` cross-validated
against it at that scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..sim import Environment, Event, Timeout
from .params import BGQParams, DEFAULT_PARAMS
from .torus import Torus

__all__ = ["Packet", "TorusNetwork", "MEMFIFO", "RGET_REQUEST", "RDMA_DATA"]

# Packet kinds
MEMFIFO = "memfifo"  # delivered into a reception FIFO, software-processed
RGET_REQUEST = "rget-request"  # remote-read request, handled by remote MU
RDMA_DATA = "rdma-data"  # RDMA payload, written directly to memory


@dataclass
class Packet:
    """One torus packet (up to 512 B payload + 32 B header)."""

    src: int
    dst: int
    kind: str
    payload_bytes: int
    #: Reception FIFO id at the destination (memfifo packets).
    rec_fifo: int = 0
    #: Opaque message context carried through the network.
    message: object = None
    #: Index of this packet within its message, and whether it is last.
    seq: int = 0
    is_last: bool = True

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes  # header accounted via effective bandwidth


class TorusNetwork:
    """The torus interconnect: routes packets, models link contention.

    ``deliver`` is the callback invoked (at the arrival time) with each
    packet at its destination; the machine wires it to the destination
    node's messaging unit.
    """

    def __init__(
        self,
        env: Environment,
        torus: Torus,
        params: BGQParams = DEFAULT_PARAMS,
        deliver: Optional[Callable[[Packet], None]] = None,
        routing: str = "deterministic",
    ) -> None:
        if routing not in ("deterministic", "adaptive"):
            raise ValueError(f"unknown routing mode {routing!r}")
        self.env = env
        self.torus = torus
        self.params = params
        self.deliver = deliver
        #: "deterministic" = fixed dimension order (BG/Q default);
        #: "adaptive" = per-packet dimension-order permutation (a model
        #: of BG/Q's dynamic routing — spreads all-to-all traffic over
        #: more links).  The permutation is a deterministic hash of the
        #: packet count so simulations stay reproducible.
        self.routing = routing
        #: busy-until time per directed link
        self._link_free: Dict[Tuple[int, int], float] = {}
        #: Injects of the current timestamp, awaiting the canonical-order
        #: reservation flush (see :meth:`_flush_reservations`).  The
        #: first request of a timestamp is held in the ``_f_*`` scalar
        #: slots (no tuple allocation — almost every flush is a
        #: singleton, and the extra garbage would trigger gen-0 GC
        #: passes over the whole simulation graph); only simultaneous
        #: followers spill into ``_deferred``.
        self._deferred: list = []
        self._flush_armed = False
        self._f_node = 0
        self._f_n = 0
        self._f_packet: Optional[Packet] = None
        self._f_done: Optional[Event] = None
        self._f_route = None
        self._f_action = None
        #: Per-source-node inject counter — the tie-break that orders
        #: simultaneous reservations.
        self._node_inject_seq: Dict[int, int] = {}
        self.packets_sent = 0
        self.bytes_sent = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: None (the default) the fault hook below is a single attribute
        #: test and the trajectory is identical to a fault-free build.
        self.fault = None

    def _dim_order(self) -> Optional[list]:
        if self.routing == "deterministic":
            return None
        ndim = self.torus.ndim
        order = list(range(ndim))
        # Cheap deterministic shuffle keyed by the packet counter.
        h = self.packets_sent * 2654435761 % (2**32)
        for i in range(ndim - 1, 0, -1):
            j = h % (i + 1)
            order[i], order[j] = order[j], order[i]
            h //= i + 1
        return order

    def _serialization(self, packet: Packet) -> float:
        """Cycles to stream a packet across one link."""
        p = self.params
        wire = packet.payload_bytes + p.packet_header_bytes
        return wire / (p.link_bandwidth / 1.6e9)  # raw link rate, cycles

    def inject(self, packet: Packet) -> Event:
        """Send a packet; the returned event fires on arrival at dst.

        Must be called at the moment the MU puts the packet on the wire.
        """
        env = self.env
        done = env.event()
        self.packets_sent += 1
        self.bytes_sent += packet.payload_bytes
        if packet.src == packet.dst:
            # MU loopback (sends between processes on one node, or to
            # self): no torus links, just the MU ingress/egress path.
            def loop():
                yield env.timeout(self.params.nic_latency)
                if self.deliver is not None:
                    self.deliver(packet)
                done.succeed(packet)

            env.process(loop(), name=f"pkt-loopback-{packet.src}")
            return done
        return self._inject_routed(packet, done)

    def reserve_route(self, route, ser: float, t_inject: float) -> Tuple[float, float]:
        """Run the cut-through reservation for one packet; returns
        ``(arrival, stall)`` and updates the link busy-until timeline.

        The head advances one hop_latency per link; each link is busy
        for the serialization time starting when the head reaches it (or
        when the link frees, if later — upstream then stalls, which we
        conservatively roll into the arrival time).  Extracted so the
        sharded engine's reservation fabric (repro.bgq.shardnet) runs
        the *identical* arithmetic, in the identical float-op order, at
        the window barrier.
        """
        p = self.params
        t_head = t_inject + p.nic_latency
        stall = 0.0
        link_free = self._link_free
        for link in route:
            free_at = link_free.get(link, 0.0)
            start = max(t_head, free_at)
            stall += start - t_head
            link_free[link] = start + ser
            t_head = start + p.hop_latency
        arrival = t_head + ser
        return arrival, stall

    def _inject_routed(self, packet: Packet, done: Event) -> Event:
        """Route + reserve + deliver one non-loopback packet.

        Reservations are *not* made at the call: all injects of the
        current timestamp are buffered and flushed once every event at
        this simulated time has executed, sorted by
        ``(src_node, per-node inject counter)``.  Simultaneous injects
        from different nodes therefore contend for links in a canonical
        order that depends only on the traffic, not on the event heap's
        interleaving — which is what lets the sharded engine
        (repro.bgq.shardnet) replay the identical reservation sequence
        from per-shard state alone.  Routing and fault decisions stay at
        the call (they consume ordered counters/RNG draws).

        Overridden by the sharded network, which buffers the request
        for barrier-time reservation instead.
        """
        env = self.env
        route = self.torus.route(packet.src, packet.dst, dim_order=self._dim_order())
        fault = self.fault
        action = fault.on_route(packet, route) if fault is not None else None
        node = packet.src
        n = self._node_inject_seq.get(node, 0)
        self._node_inject_seq[node] = n + 1
        if not self._flush_armed:
            self._flush_armed = True
            self._f_node = node
            self._f_n = n
            self._f_packet = packet
            self._f_done = done
            self._f_route = route
            self._f_action = action
            # A zero timeout runs after every event already scheduled at
            # this timestamp — i.e. after all simultaneous injects.
            to = Timeout(env, 0.0)
            to.callbacks = [self._flush_reservations]
        else:
            self._deferred.append((node, n, packet, done, route, action))
        return done

    def _flush_reservations(self, _event: Event) -> None:
        """Reserve this timestamp's deferred injects in canonical order."""
        self._flush_armed = False
        packet, done = self._f_packet, self._f_done
        route, action = self._f_route, self._f_action
        self._f_packet = self._f_done = self._f_route = self._f_action = None
        if not self._deferred:
            self._launch(packet, done, route, action)
            return
        batch, self._deferred = self._deferred, []
        batch.append((self._f_node, self._f_n, packet, done, route, action))
        batch.sort(key=lambda r: (r[0], r[1]))
        for _node, _n, packet, done, route, action in batch:
            self._launch(packet, done, route, action)

    def _launch(self, packet: Packet, done: Event, route, action) -> None:
        """Reserve the route and start the packet's flight."""
        env = self.env
        ser = self._serialization(packet)
        arrival, stall = self.reserve_route(route, ser, env.now)

        if action is not None:
            if action.drop:
                # Lost in flight: links were still occupied up to the
                # loss point (we conservatively charge the full route),
                # but the packet never arrives and ``done`` never fires.
                return
            arrival += action.extra_delay
            if action.dup_gap is not None:
                dup_at = arrival + action.dup_gap

                def fly_dup():
                    yield env.timeout(dup_at - env.now)
                    if self.deliver is not None:
                        self.deliver(packet)

                env.process(
                    fly_dup(), name=f"pkt-dup-{packet.src}->{packet.dst}"
                )

        def fly():
            yield env.timeout(arrival - env.now)
            if self.deliver is not None:
                self.deliver(packet)
            done.succeed(packet)

        env.process(fly(), name=f"pkt-{packet.src}->{packet.dst}")

    def link_utilization(self) -> Dict[Tuple[int, int], float]:
        """Busy-until horizon per link (diagnostics)."""
        return dict(self._link_free)
