"""Atomic artifact writes: temp file + ``os.replace``.

Every committed artifact this repo produces — ``BENCH_NNNN.json``, the
lint cache and baseline, trace manifests, gate reports — used to be
written *in place* (``open(path, "w")`` / ``Path.write_text``).  Two
concurrent writers (serve workers exporting manifests, parallel CI
steps sharing a lint cache) or one writer killed mid-write (a cancelled
job) then leave a truncated, unparseable file where a valid one stood.

The fix is the classic one: write the full payload to a temporary file
*in the target's directory* (``os.replace`` must not cross
filesystems), then atomically rename over the destination.  Readers
observe either the complete old content or the complete new content,
never a prefix; a crash leaves the old file intact and unlinks the
temp.  Concurrent writers last-write-wins at whole-file granularity.

These helpers are dependency-free (no simulation imports) so every
layer — harness, analysis, trace exporters, the serve runtime — can
use them.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, IO, Optional, Union

__all__ = ["atomic_write_text", "atomic_write_json", "atomic_write_with"]

PathLike = Union[str, os.PathLike]


def atomic_write_with(path: PathLike, write: Callable[[IO[str]], None]) -> Path:
    """Run ``write(fh)`` against a temp file, then rename it onto ``path``.

    The temp file lives next to ``path`` (same directory, private name)
    so the final ``os.replace`` is atomic on POSIX and Windows alike.
    If ``write`` raises, the temp file is removed and ``path`` is left
    exactly as it was.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            write(fh)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomic drop-in for ``Path(path).write_text(text)``."""
    return atomic_write_with(path, lambda fh: fh.write(text))


def atomic_write_json(
    path: PathLike,
    obj: Any,
    *,
    indent: Optional[int] = None,
    sort_keys: bool = False,
    default: Optional[Callable[[Any], Any]] = None,
    trailing_newline: bool = False,
) -> Path:
    """Atomic drop-in for ``json.dump(obj, open(path, "w"))``.

    Serialization streams into the temp file, so a payload that turns
    out not to be JSON-serializable (``TypeError`` mid-dump — the
    classic partial-write corruption) aborts without touching the
    destination.
    """

    def write(fh: IO[str]) -> None:
        json.dump(obj, fh, indent=indent, sort_keys=sort_keys, default=default)
        if trailing_newline:
            fh.write("\n")

    return atomic_write_with(path, write)
