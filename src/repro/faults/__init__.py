"""Deterministic fault injection & recovery for the simulated BG/Q network.

The paper's runtime optimizations assume a lossless torus; this package
relaxes that assumption so the reproduction can study best-effort
behaviour (see PAPERS.md: "Best-Effort Communication Improves
Performance and Scales Robustly on Conventional Hardware") and measure
the retry/timeout overheads Task Bench-style studies quantify.

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded, named fault
  profiles (drop / duplicate / delay / reorder / corrupt rates per link
  and per MU reception FIFO, plus scheduled link-down windows) and the
  :class:`RetryPolicy` the recovery layer uses.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: draws from
  named :class:`~repro.sim.rng.StreamRegistry` streams at the
  ``bgq/network.py`` and ``bgq/mu.py`` choke points.
* :mod:`repro.faults.qos` — per-dispatch delivery-semantics modes
  (``QOS_RELIABLE`` / ``QOS_BEST_EFFORT`` / ``QOS_BEST_EFFORT_FRESH``)
  threaded from handler registration down to ``PamiContext._post``.
* :mod:`repro.faults.recovery` — :class:`ReliableTransport`: sequence-
  numbered sends with ACK/timeout/exponential-backoff retransmit,
  duplicate suppression, and graceful-degradation counters, hooked into
  ``pami/context.py``.

With no plan installed every hook is a single ``is None`` attribute
test on the hot path — the fault-free trajectory is cycle-for-cycle
identical to a build without this package (bench-gate enforced).
"""

from .injector import FAULT_TRACK, FaultInjector, FaultStats
from .plan import FaultPlan, FaultRates, LinkDownWindow, PROFILES
from .qos import (
    QOS_BEST_EFFORT,
    QOS_BEST_EFFORT_FRESH,
    QOS_NAMES,
    QOS_RELIABLE,
    parse_qos,
    qos_name,
)
from .recovery import RELIABLE_ACK_DISPATCH, ReliableTransport, RetryPolicy

__all__ = [
    "FAULT_TRACK",
    "FaultInjector",
    "FaultStats",
    "FaultPlan",
    "FaultRates",
    "LinkDownWindow",
    "PROFILES",
    "QOS_BEST_EFFORT",
    "QOS_BEST_EFFORT_FRESH",
    "QOS_NAMES",
    "QOS_RELIABLE",
    "RELIABLE_ACK_DISPATCH",
    "ReliableTransport",
    "RetryPolicy",
    "parse_qos",
    "qos_name",
]
