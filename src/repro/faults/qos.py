"""Delivery-semantics QoS modes for the simulated transport.

Per-dispatch knob threaded from ``charm``/``converse`` handler
registration down to ``PamiContext._post`` (see the reliability layer
in :mod:`repro.faults.recovery`):

* ``QOS_RELIABLE`` — sequence-stamped, ACKed, retransmitted; held in
  the transport's ``pending`` table and counted as in-flight by the
  quiescence detector.  Today's default; semantics unchanged.
* ``QOS_BEST_EFFORT`` — no sequence stamp, no ACK, no retransmit
  timer, no ``pending`` entry.  A dropped packet is simply gone; the
  application owes its own tolerance (chaotic relaxation, halo
  staleness bounds).  Never counted as in-flight.
* ``QOS_BEST_EFFORT_FRESH`` — unstamped like best-effort, but each
  send carries a per-``(dest, key)`` generation number and the
  receiver drops arrivals older than the newest it has seen: a newer
  send to the same flow supersedes an undelivered (or reordered /
  duplicated) older one.  The natural mode for "latest value wins"
  halo exchange.

The constants are small ints (not an Enum) so the per-send comparison
on the hot path is a plain ``==`` between ints, and the enum-default
guard in ``_post`` keeps reliable-mode trajectories cycle-for-cycle
identical to builds without this module.
"""

from __future__ import annotations
from types import MappingProxyType

__all__ = [
    "QOS_RELIABLE",
    "QOS_BEST_EFFORT",
    "QOS_BEST_EFFORT_FRESH",
    "QOS_NAMES",
    "parse_qos",
    "qos_name",
]

QOS_RELIABLE = 0
QOS_BEST_EFFORT = 1
QOS_BEST_EFFORT_FRESH = 2

#: Human-readable names (chaosbench matrix axis, reports, CLIs).
QOS_NAMES = MappingProxyType({
    QOS_RELIABLE: "reliable",
    QOS_BEST_EFFORT: "best_effort",
    QOS_BEST_EFFORT_FRESH: "fresh",
})

_BY_NAME = MappingProxyType({
    "reliable": QOS_RELIABLE,
    "best_effort": QOS_BEST_EFFORT,
    "best-effort": QOS_BEST_EFFORT,
    "fresh": QOS_BEST_EFFORT_FRESH,
    "best_effort_fresh": QOS_BEST_EFFORT_FRESH,
})


def qos_name(qos: int) -> str:
    """The canonical name of a QoS constant."""
    try:
        return QOS_NAMES[qos]
    except KeyError:
        raise ValueError(f"unknown QoS mode {qos!r}") from None


def parse_qos(spec) -> int:
    """Accept a constant or a name ("reliable" / "best_effort" / "fresh")."""
    if isinstance(spec, int):
        if spec in QOS_NAMES:
            return spec
        raise ValueError(f"unknown QoS mode {spec!r}")
    try:
        return _BY_NAME[str(spec).strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown QoS mode {spec!r} (known: {known})") from None
