"""Fault plans: seeded, named descriptions of what goes wrong and when.

A :class:`FaultPlan` is pure data — rates, windows and a root seed.
All randomness is drawn later by the :class:`~repro.faults.injector.
FaultInjector` from named :class:`~repro.sim.rng.StreamRegistry`
streams derived from ``seed``, so a given ``(plan, workload)`` pair
reproduces a bit-identical fault schedule.

Profiles are selected programmatically (``FaultPlan.profile("drop5",
seed=3)``), through :class:`~repro.converse.machine.RunConfig`'s
``fault_plan`` field, or globally through the ``REPRO_FAULTS``
environment variable (``REPRO_FAULTS=drop5`` or
``REPRO_FAULTS=drop5@7`` to pick a seed), which the Converse runtime
consults when no explicit plan is configured.

Faults apply to memory-FIFO packets only by default (``kinds``): the
RDMA engines of real BG/Q sit behind link-level hardware retry, and the
best-effort literature targets the active-message path, so rget/rput
streams stay lossless unless a plan opts them in.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..bgq.params import CYCLES_PER_US
from types import MappingProxyType

__all__ = ["FaultRates", "LinkDownWindow", "FaultPlan", "RetryPolicy", "PROFILES"]


@dataclass(frozen=True)
class FaultRates:
    """Per-packet fault probabilities at one choke point (sum <= 1)."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0

    @property
    def total(self) -> float:
        return self.drop + self.duplicate + self.delay + self.reorder + self.corrupt

    def validate(self, where: str) -> None:
        rates = (self.drop, self.duplicate, self.delay, self.reorder, self.corrupt)
        if any(r < 0.0 for r in rates) or self.total > 1.0:
            raise ValueError(
                f"{where}: fault rates must be >= 0 and sum to <= 1, got {self}"
            )


@dataclass(frozen=True)
class LinkDownWindow:
    """A scheduled outage of directed link(s) during ``[start, end)`` cycles.

    ``src``/``dst`` of ``None`` are wildcards: ``LinkDownWindow(None,
    None, t0, t1)`` takes the whole torus down, ``(3, None, ...)``
    severs every link out of node 3.
    """

    src: Optional[int]
    dst: Optional[int]
    start: float
    end: float

    def matches(self, link: Tuple[int, int]) -> bool:
        return (self.src is None or self.src == link[0]) and (
            self.dst is None or self.dst == link[1]
        )

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class RetryPolicy:
    """ACK-timeout retransmission knobs for the recovery layer."""

    timeout_cycles: float = 25.0 * CYCLES_PER_US
    backoff: float = 2.0
    max_retries: int = 12


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault-injection scenario."""

    seed: int = 0
    name: str = "custom"
    #: Default per-directed-link rates (applied to every torus link).
    link: FaultRates = FaultRates()
    #: Per-link overrides, keyed by directed ``(src_node, dst_node)``.
    per_link: Mapping[Tuple[int, int], FaultRates] = field(default_factory=dict)
    #: Default per-MU-reception-FIFO rates (drop/duplicate are honoured;
    #: in-FIFO delay/reorder/corrupt are not modelled at this hop).
    rec_fifo: FaultRates = FaultRates()
    #: Per-FIFO overrides, keyed by ``(node_id, fifo_id)``.
    per_fifo: Mapping[Tuple[int, int], FaultRates] = field(default_factory=dict)
    #: Mean of the exponential extra-latency draw for ``delay`` faults.
    delay_mean_cycles: float = 4_000.0
    #: Mean extra latency for ``reorder`` faults (held back long enough
    #: that later traffic on the flow overtakes the packet).
    reorder_mean_cycles: float = 24_000.0
    #: Scheduled outages.
    down: Tuple[LinkDownWindow, ...] = ()
    #: Packet kinds subject to faults (see module docstring).
    kinds: Tuple[str, ...] = ("memfifo",)
    #: Recovery knobs used when this plan enables the reliable transport.
    retry_timeout_us: float = 25.0
    retry_backoff: float = 2.0
    retry_max: int = 12

    def __post_init__(self) -> None:
        self.link.validate("link")
        self.rec_fifo.validate("rec_fifo")
        for key, rates in self.per_link.items():
            rates.validate(f"per_link[{key}]")
        for key, rates in self.per_fifo.items():
            rates.validate(f"per_fifo[{key}]")
        if self.retry_max < 0 or self.retry_backoff < 1.0 or self.retry_timeout_us <= 0:
            raise ValueError("bad retry policy parameters")

    # -- lookups -----------------------------------------------------------
    def rates_for(self, link: Tuple[int, int]) -> FaultRates:
        return self.per_link.get(link, self.link)

    def fifo_rates_for(self, node_id: int, fifo_id: int) -> FaultRates:
        return self.per_fifo.get((node_id, fifo_id), self.rec_fifo)

    def down_window_for(self, now: float) -> Optional[LinkDownWindow]:
        """The first active outage window at ``now`` (or None)."""
        for w in self.down:
            if w.active(now):
                return w
        return None

    @property
    def is_null(self) -> bool:
        """True when this plan can never produce a fault."""
        return (
            self.link.total == 0.0
            and self.rec_fifo.total == 0.0
            and not self.per_link
            and not self.per_fifo
            and not self.down
        )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            timeout_cycles=self.retry_timeout_us * CYCLES_PER_US,
            backoff=self.retry_backoff,
            max_retries=self.retry_max,
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def profile(cls, name: str, seed: int = 0, **overrides) -> "FaultPlan":
        """Build a named profile (see :data:`PROFILES`)."""
        if name not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(f"unknown fault profile {name!r} (known: {known})")
        kwargs: Dict = dict(PROFILES[name])
        kwargs.update(overrides)
        return cls(seed=seed, name=name, **kwargs)

    @classmethod
    def from_env(cls, var: str = "REPRO_FAULTS") -> Optional["FaultPlan"]:
        """Parse ``REPRO_FAULTS=<profile>`` / ``<profile>@<seed>``."""
        spec = os.environ.get(var, "").strip()
        if not spec or spec in ("0", "none", "off"):
            return None
        name, _, seed_text = spec.partition("@")
        seed = int(seed_text) if seed_text else 0
        return cls.profile(name, seed=seed)


#: Named fault profiles: the chaos suite's seed matrix runs over these
#: (EXPERIMENTS.md "Chaos suite").  Rates are per packet per link hop.
PROFILES: Dict[str, Dict] = MappingProxyType({
    "none": {},
    "drop1": {"link": FaultRates(drop=0.01)},
    "drop5": {"link": FaultRates(drop=0.05)},
    "drop10": {"link": FaultRates(drop=0.10)},
    "dup5": {"link": FaultRates(duplicate=0.05)},
    "delay10": {"link": FaultRates(delay=0.10)},
    "reorder10": {"link": FaultRates(reorder=0.10)},
    "corrupt2": {"link": FaultRates(corrupt=0.02)},
    "fifo5": {"rec_fifo": FaultRates(drop=0.04, duplicate=0.01)},
    "chaos": {
        "link": FaultRates(drop=0.03, duplicate=0.02, delay=0.03, reorder=0.02,
                           corrupt=0.01),
        "rec_fifo": FaultRates(drop=0.01, duplicate=0.01),
    },
    "linkflap": {
        "link": FaultRates(drop=0.01),
        "down": (LinkDownWindow(None, None, 100_000.0, 400_000.0),),
    },
    # Permanent partition: every link down for the whole run — longer
    # than the full retransmit ladder (25 us * (2^13 - 1) ~ 328 M
    # cycles), so every reliable send exhausts its retries and gives
    # up.  The chaosbench degraded-but-correct axis asserts the run
    # still quiesces instead of hanging.
    "partition": {
        "down": (LinkDownWindow(None, None, 0.0, 1.0e15),),
    },
})
