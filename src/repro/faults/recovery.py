"""Recovery: sequence-numbered sends, ACKs, retransmit, dedup.

One :class:`ReliableTransport` attaches to one
:class:`~repro.pami.context.PamiContext` (the runtime enables it on
every context whenever a fault plan is installed).  Every memory-FIFO
active message the context posts — eager data, RTS/ACK control, and
many-to-many traffic all funnel through ``PamiContext._post`` — is
stamped with a per-destination-endpoint sequence number and held in
``pending`` until the receiver's ACK arrives; an exponential-backoff
timer reposts a fresh descriptor on timeout and gives up (counting
``gave_up``) after ``max_retries``.

Receive side, gated in ``PamiContext.advance`` before dispatch:

* messages whose descriptor was marked ``corrupted`` by the injector
  are discarded un-ACKed (the retransmit recovers);
* duplicates — already-seen sequence numbers — are suppressed but
  re-ACKed, because a suppressed duplicate usually means the first ACK
  was lost;
* out-of-order arrivals are *accepted* (active messages commute in
  this runtime; ordering is the application's concern) but counted as
  ``reordered_accepted``.

ACK packets themselves travel unreliably (no ACK-of-ACK): a lost ACK
costs one retransmit plus one duplicate suppression, nothing more.

Protocol cost model: ACK transmission is charged to the receiving
thread like any ``PAMI_Send_immediate``; retransmits are timer-driven
reposts with no thread charge (modelling an MU-resident retry engine —
a deliberate simplification, see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .injector import FAULT_TRACK
from .plan import RetryPolicy

__all__ = ["RELIABLE_ACK_DISPATCH", "ACK_BYTES", "ReliableTransport", "RetryPolicy"]

#: Dispatch id reserved for transport ACKs (below M2M's 0x7F; the
#: reliability gate consumes these before user dispatch ever runs).
RELIABLE_ACK_DISPATCH = 0x7E

#: Wire size of an ACK: (endpoint, seq) fits one small packet.
ACK_BYTES = 16


class _SendRecord:
    """One un-ACKed stamped send."""

    __slots__ = ("payload", "dest", "acked")

    def __init__(self, payload, dest) -> None:
        self.payload = payload
        self.dest = dest
        self.acked = False


class _RecvFlow:
    """Receive-side dedup state for one source endpoint."""

    __slots__ = ("next_expected", "early")

    def __init__(self) -> None:
        self.next_expected = 0
        #: Sequence numbers accepted ahead of ``next_expected``.
        self.early: Set[int] = set()

    def is_dup(self, seq: int) -> bool:
        return seq < self.next_expected or seq in self.early

    def accept(self, seq: int) -> bool:
        """Record ``seq`` as delivered; True if it arrived in order."""
        if seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self.early:
                self.early.discard(self.next_expected)
                self.next_expected += 1
            return True
        self.early.add(seq)
        return False


class ReliableTransport:
    """Per-context reliability: stamp, ACK, retransmit, dedup."""

    def __init__(self, ctx, policy: RetryPolicy, tracer=None) -> None:
        self.ctx = ctx
        self.policy = policy
        self.tracer = tracer
        #: Un-ACKed sends, keyed by ``(dest_endpoint, seq)``.  The
        #: quiescence detector counts these as in-flight messages.
        self.pending: Dict[Tuple[Tuple[int, int], int], _SendRecord] = {}
        self._next_seq: Dict[Tuple[int, int], int] = {}
        self._flows: Dict[Tuple[int, int], _RecvFlow] = {}
        # Graceful-degradation counters (snapshotted into ``rel.*``).
        self.retries = 0
        self.gave_up = 0
        self.dup_suppressed = 0
        self.reordered_accepted = 0
        self.acks_sent = 0
        self.corrupt_dropped = 0

    def _mark(self, name: str) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.mark(FAULT_TRACK, name)

    @property
    def in_flight(self) -> int:
        """Stamped sends not yet ACKed (nor given up on)."""
        return len(self.pending)

    # -- send side ---------------------------------------------------------
    def stamp(self, payload, dest) -> None:
        """Assign a sequence number and arm the retransmit timer."""
        key = (dest[0], dest[1])
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        payload.seq = seq
        rec = _SendRecord(payload, dest)
        self.pending[(key, seq)] = rec
        env = self.ctx.env
        env.process(
            self._retransmit(key, seq, rec),
            name=f"rel-retx-{key[0]}.{key[1]}-{seq}",
        )

    def _retransmit(self, key, seq, rec):
        env = self.ctx.env
        policy = self.policy
        timeout = policy.timeout_cycles
        attempts = 0
        while True:
            yield env.timeout(timeout)
            if rec.acked:
                return
            if attempts >= policy.max_retries:
                # Graceful degradation: stop resending and stop counting
                # this send as in-flight (or quiescence would never be
                # declared on a partitioned network).
                self.gave_up += 1
                self.pending.pop((key, seq), None)
                self._mark("rel.gave_up")
                return
            attempts += 1
            self.retries += 1
            self._mark("rel.retry")
            self.ctx._repost(rec.dest, rec.payload)
            timeout *= policy.backoff

    # -- receive side (gated in PamiContext.advance) -----------------------
    def on_receive(self, thread, payload, desc):
        """Generator; returns True when the message should dispatch."""
        if getattr(desc, "corrupted", False):
            # Damaged in flight (corrupt fault, or a lost fragment of a
            # multi-packet message): discard without ACK; the sender's
            # retransmit carries a clean copy.
            self.corrupt_dropped += 1
            self._mark("rel.corrupt_dropped")
            return False
        if payload.dispatch_id == RELIABLE_ACK_DISPATCH:
            acker, seq = payload.data
            rec = self.pending.pop(((acker[0], acker[1]), seq), None)
            if rec is not None:
                rec.acked = True
            return False  # transport-internal; never dispatched
        if payload.seq is None:
            return True  # unstamped sender (no reliability there)
        src = (payload.src_endpoint[0], payload.src_endpoint[1])
        flow = self._flows.get(src)
        if flow is None:
            flow = _RecvFlow()
            self._flows[src] = flow
        if flow.is_dup(payload.seq):
            # Our ACK was probably lost: suppress, but ACK again.
            self.dup_suppressed += 1
            self._mark("rel.dup_suppressed")
            yield from self._send_ack(thread, payload)
            return False
        in_order = flow.accept(payload.seq)
        if not in_order:
            self.reordered_accepted += 1
            self._mark("rel.reordered_accepted")
        yield from self._send_ack(thread, payload)
        return True

    def _send_ack(self, thread, payload):
        self.acks_sent += 1
        ctx = self.ctx
        yield from thread.compute(ctx.params.pami_send_imm_instr)
        ctx._post(
            payload.src_endpoint,
            RELIABLE_ACK_DISPATCH,
            ACK_BYTES,
            (ctx.endpoint, payload.seq),
        )

    def stats_dict(self) -> dict:
        return {
            "retries": self.retries,
            "gave_up": self.gave_up,
            "dup_suppressed": self.dup_suppressed,
            "reordered_accepted": self.reordered_accepted,
            "acks_sent": self.acks_sent,
            "corrupt_dropped": self.corrupt_dropped,
        }
