"""Recovery: sequence-numbered sends, ACKs, retransmit, dedup.

One :class:`ReliableTransport` attaches to one
:class:`~repro.pami.context.PamiContext` (the runtime enables it on
every context whenever a fault plan is installed).  Every memory-FIFO
active message the context posts — eager data, RTS/ACK control, and
many-to-many traffic all funnel through ``PamiContext._post`` — is
handled per its QoS mode (:mod:`repro.faults.qos`):

* ``QOS_RELIABLE`` (default): stamped with a per-destination-endpoint
  sequence number and held in ``pending`` until the receiver's ACK
  arrives; an exponential-backoff timer reposts a fresh descriptor on
  timeout and gives up (counting ``gave_up``) after ``max_retries``.
* ``QOS_BEST_EFFORT``: never touches this transport at all — no seq
  stamp, no ``pending`` entry, no timer, no ACK.  The send-side hot
  path allocates nothing here (repro-lint F2 enforces that).
* ``QOS_BEST_EFFORT_FRESH``: :meth:`stamp_fresh` attaches a
  per-``(dest, key)`` generation number; the receive gate drops any
  arrival whose generation is not newer than the newest already seen
  on that flow (``stale_dropped``) — a newer send supersedes an
  undelivered, reordered, or duplicated older one.  Still no ACK, no
  retransmit, no ``pending`` entry.

Receive side, gated in ``PamiContext.advance`` before dispatch:

* messages whose descriptor was marked ``corrupted`` by the injector
  are discarded un-ACKed (the retransmit recovers; a corrupted
  best-effort message is simply lost);
* duplicates — already-seen sequence numbers — are suppressed but
  re-ACKed, because a suppressed duplicate usually means the first ACK
  was lost;
* out-of-order arrivals are *accepted* (active messages commute in
  this runtime; ordering is the application's concern) but counted as
  ``reordered_accepted``.

ACK packets themselves travel unreliably (no ACK-of-ACK): a lost ACK
costs one retransmit plus one duplicate suppression, nothing more.
ACKs are transport-internal in *both* directions of the accounting:
they are posted outside the machine layer (never counted in
``ConverseRuntime.messages_sent``), consumed before dispatch (never
counted in ``messages_executed``), unstamped (never in ``pending``) —
so the quiescence detector's totals exclude them entirely.

Dedup-window bound: a sender that gives up on seq N leaves a permanent
hole at the receiver; without a bound ``next_expected`` would never
pass it and ``early`` would grow with every later send.  When ``early``
reaches :data:`EARLY_WINDOW` entries the flow concludes the gap was
abandoned, skips ``next_expected`` forward to the oldest early seq
(counting the skipped holes in ``holes_skipped``), and drains the now-
contiguous prefix.  A late original for a skipped hole then suppresses
as an ordinary duplicate — delivery stays at-most-once either way.

Protocol cost model: ACK transmission is charged to the receiving
thread like any ``PAMI_Send_immediate``; retransmits are timer-driven
reposts with no thread charge (modelling an MU-resident retry engine —
a deliberate simplification, see docs/ARCHITECTURE.md).  Retransmit
timers are cancelled the moment their ACK lands
(:meth:`~repro.sim.engine.Event.cancel`), so a completed send leaves
no stale timer event in the heap.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .injector import FAULT_TRACK
from .plan import RetryPolicy

__all__ = [
    "RELIABLE_ACK_DISPATCH",
    "ACK_BYTES",
    "EARLY_WINDOW",
    "ReliableTransport",
    "RetryPolicy",
]

#: Dispatch id reserved for transport ACKs (below M2M's 0x7F; the
#: reliability gate consumes these before user dispatch ever runs).
RELIABLE_ACK_DISPATCH = 0x7E

#: Wire size of an ACK: (endpoint, seq) fits one small packet.
ACK_BYTES = 16

#: Receive-side dedup window: how many out-of-order sequence numbers a
#: flow buffers before concluding the gap below them was abandoned by a
#: given-up sender and skipping ``next_expected`` past the hole.  Large
#: enough that transient reordering (tens of packets on a congested
#: link) never trips it; a give-up strands the flow permanently, so any
#: finite bound eventually fires.
EARLY_WINDOW = 64


class _SendRecord:
    """One un-ACKed stamped send."""

    __slots__ = ("payload", "dest", "acked", "timer")

    def __init__(self, payload, dest) -> None:
        self.payload = payload
        self.dest = dest
        self.acked = False
        #: The armed retransmit :class:`~repro.sim.engine.Timeout`
        #: while the timer process is parked on one (else None).  The
        #: ACK path cancels it so the heap entry dies with the record.
        self.timer = None


class _RecvFlow:
    """Receive-side dedup state for one source endpoint."""

    __slots__ = ("next_expected", "early")

    def __init__(self) -> None:
        self.next_expected = 0
        #: Sequence numbers accepted ahead of ``next_expected``.
        self.early: Set[int] = set()

    def is_dup(self, seq: int) -> bool:
        return seq < self.next_expected or seq in self.early

    def accept(self, seq: int) -> Tuple[bool, int]:
        """Record ``seq`` as delivered; returns ``(in_order, holes)``.

        ``holes`` is the count of abandoned sequence numbers skipped
        when the bounded early-window forced ``next_expected`` past a
        permanent gap (0 on the normal path).
        """
        if seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self.early:
                self.early.discard(self.next_expected)
                self.next_expected += 1
            return True, 0
        self.early.add(seq)
        if len(self.early) < EARLY_WINDOW:
            return False, 0
        # Window full: every seq in [next_expected, min(early)) was
        # abandoned by a given-up sender.  Skip the holes and drain the
        # contiguous prefix; late originals now suppress as duplicates.
        oldest = min(self.early)
        holes = oldest - self.next_expected
        self.next_expected = oldest + 1
        self.early.discard(oldest)
        while self.next_expected in self.early:
            self.early.discard(self.next_expected)
            self.next_expected += 1
        return False, holes


class ReliableTransport:
    """Per-context reliability: stamp, ACK, retransmit, dedup."""

    def __init__(self, ctx, policy: RetryPolicy, tracer=None) -> None:
        self.ctx = ctx
        self.policy = policy
        self.tracer = tracer
        #: Un-ACKed sends, keyed by ``(dest_endpoint, seq)``.  The
        #: quiescence detector counts these as in-flight messages.
        #: Best-effort traffic never appears here.
        self.pending: Dict[Tuple[Tuple[int, int], int], _SendRecord] = {}
        self._next_seq: Dict[Tuple[int, int], int] = {}
        self._flows: Dict[Tuple[int, int], _RecvFlow] = {}
        #: FRESH send-side generation counters, keyed by
        #: ``(dest_node, dest_fifo, fresh_key)``.
        self._fresh_next: Dict[Tuple, int] = {}
        #: FRESH receive-side high-water marks, keyed by
        #: ``(src_node, src_fifo, fresh_key)``.
        self._fresh_seen: Dict[Tuple, int] = {}
        # Graceful-degradation counters (snapshotted into ``rel.*``).
        self.retries = 0
        self.gave_up = 0
        self.dup_suppressed = 0
        self.reordered_accepted = 0
        self.acks_sent = 0
        self.corrupt_dropped = 0
        #: FRESH arrivals superseded by a newer generation.
        self.stale_dropped = 0
        #: Abandoned sequence numbers skipped by the bounded dedup window.
        self.holes_skipped = 0
        #: Retransmit timers retired early by their ACK.
        self.timers_cancelled = 0

    def _mark(self, name: str) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.mark(FAULT_TRACK, name)

    @property
    def in_flight(self) -> int:
        """Stamped sends not yet ACKed (nor given up on)."""
        return len(self.pending)

    # -- send side ---------------------------------------------------------
    def stamp(self, payload, dest) -> None:
        """Assign a sequence number and arm the retransmit timer."""
        key = (dest[0], dest[1])
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        payload.seq = seq
        rec = _SendRecord(payload, dest)
        self.pending[(key, seq)] = rec
        env = self.ctx.env
        env.process(
            self._retransmit(key, seq, rec),
            name=f"rel-retx-{key[0]}.{key[1]}-{seq}",
        )

    def stamp_fresh(self, payload, dest, fresh_key) -> None:
        """Attach a FRESH generation number; no pending entry, no timer."""
        k = (dest[0], dest[1], fresh_key)
        gen = self._fresh_next.get(k, 0)
        self._fresh_next[k] = gen + 1
        payload.fresh_key = fresh_key
        payload.fresh_gen = gen

    def _retransmit(self, key, seq, rec):
        env = self.ctx.env
        policy = self.policy
        timeout = policy.timeout_cycles
        attempts = 0
        while True:
            rec.timer = t = env.timeout(timeout)
            yield t
            rec.timer = None
            if rec.acked:
                return
            if attempts >= policy.max_retries:
                # Graceful degradation: stop resending and stop counting
                # this send as in-flight (or quiescence would never be
                # declared on a partitioned network).
                self.gave_up += 1
                self.pending.pop((key, seq), None)
                self._mark("rel.gave_up")
                return
            attempts += 1
            self.retries += 1
            self._mark("rel.retry")
            self.ctx._repost(rec.dest, rec.payload)
            timeout *= policy.backoff

    # -- receive side (gated in PamiContext.advance) -----------------------
    def on_receive(self, thread, payload, desc):
        """Generator; returns True when the message should dispatch."""
        if getattr(desc, "corrupted", False):
            # Damaged in flight (corrupt fault, or a lost fragment of a
            # multi-packet message): discard without ACK; the sender's
            # retransmit carries a clean copy (best-effort: just lost).
            self.corrupt_dropped += 1
            self._mark("rel.corrupt_dropped")
            return False
        if payload.dispatch_id == RELIABLE_ACK_DISPATCH:
            acker, seq = payload.data
            rec = self.pending.pop(((acker[0], acker[1]), seq), None)
            if rec is not None:
                rec.acked = True
                timer = rec.timer
                if timer is not None:
                    # Retire the armed retransmit timer in place: the
                    # parked timer process dies with it instead of
                    # waking once more at a backoff-grown delay.
                    timer.cancel()
                    rec.timer = None
                    self.timers_cancelled += 1
            return False  # transport-internal; never dispatched
        if payload.seq is None:
            # Unstamped: best-effort traffic (or a sender without the
            # transport).  FRESH sends carry a generation; anything not
            # newer than the flow's high-water mark is superseded.
            fresh_key = payload.fresh_key
            if fresh_key is None:
                return True
            src = payload.src_endpoint
            k = (src[0], src[1], fresh_key)
            seen = self._fresh_seen
            if payload.fresh_gen <= seen.get(k, -1):
                self.stale_dropped += 1
                self._mark("rel.stale_dropped")
                return False
            seen[k] = payload.fresh_gen
            return True
        src = (payload.src_endpoint[0], payload.src_endpoint[1])
        flow = self._flows.get(src)
        if flow is None:
            flow = _RecvFlow()
            self._flows[src] = flow
        if flow.is_dup(payload.seq):
            # Our ACK was probably lost: suppress, but ACK again.
            self.dup_suppressed += 1
            self._mark("rel.dup_suppressed")
            yield from self._send_ack(thread, payload)
            return False
        in_order, holes = flow.accept(payload.seq)
        if holes:
            self.holes_skipped += holes
            self._mark("rel.holes_skipped")
        if not in_order:
            self.reordered_accepted += 1
            self._mark("rel.reordered_accepted")
        yield from self._send_ack(thread, payload)
        return True

    def _send_ack(self, thread, payload):
        self.acks_sent += 1
        ctx = self.ctx
        yield from thread.compute(ctx.params.pami_send_imm_instr)
        ctx._post(
            payload.src_endpoint,
            RELIABLE_ACK_DISPATCH,
            ACK_BYTES,
            (ctx.endpoint, payload.seq),
        )

    def stats_dict(self) -> dict:
        return {
            "retries": self.retries,
            "gave_up": self.gave_up,
            "dup_suppressed": self.dup_suppressed,
            "reordered_accepted": self.reordered_accepted,
            "acks_sent": self.acks_sent,
            "corrupt_dropped": self.corrupt_dropped,
            "stale_dropped": self.stale_dropped,
            "holes_skipped": self.holes_skipped,
            "timers_cancelled": self.timers_cancelled,
        }
