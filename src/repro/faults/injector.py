"""The fault injector: seeded draws at the hardware choke points.

A :class:`FaultInjector` is consulted from exactly two places:

* :meth:`repro.bgq.network.TorusNetwork.inject` — after the route is
  computed, :meth:`FaultInjector.on_route` decides whether the packet
  is dropped, duplicated, delayed, held back for reordering, or
  corrupted on one of its links;
* :meth:`repro.bgq.mu.MessagingUnit.receive_packet` —
  :meth:`FaultInjector.on_reception` models overflow/ECC faults at the
  destination reception FIFO (drop / duplicate only).

Determinism: every directed link and every reception FIFO draws from
its own named :class:`~repro.sim.rng.StreamRegistry` stream
(``link.{src}.{dst}``, ``rfifo.{node}.{fifo}``), so a fault schedule
depends only on ``(plan.seed, the packet sequence each link sees)`` —
adding traffic on one link never perturbs the draws of another.

Corruption semantics: a ``corrupt`` fault (and the loss of a non-final
fragment of a multi-packet message) sets ``corrupted`` on the in-flight
:class:`~repro.bgq.mu.Descriptor`; the receive-side reliability gate
discards the message at dispatch, so the sender's retransmit — which
posts a *fresh* descriptor — recovers.  Without the recovery layer a
corrupted message would dispatch anyway; fault plans are therefore
only meaningful on runtimes with reliability enabled (the Converse
runtime turns it on automatically whenever a plan is installed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from ..sim.rng import StreamRegistry
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bgq.network import Packet

__all__ = ["FAULT_TRACK", "FaultStats", "RouteAction", "FaultInjector"]

#: Tracer track id for fault instant-events (comm-thread tracks start at
#: 10_000; fault marks live well above them).
FAULT_TRACK = 20_000


@dataclass
class FaultStats:
    """Graceful-degradation counters, snapshotted into ``faults.*``."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    corrupted: int = 0
    link_down_drops: int = 0
    fifo_dropped: int = 0
    fifo_duplicated: int = 0

    def as_dict(self) -> dict:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "corrupted": self.corrupted,
            "link_down_drops": self.link_down_drops,
            "fifo_dropped": self.fifo_dropped,
            "fifo_duplicated": self.fifo_duplicated,
        }


@dataclass
class RouteAction:
    """What the network should do to one packet (see ``inject``)."""

    drop: bool = False
    extra_delay: float = 0.0
    #: When set, deliver a second copy this many cycles after the first.
    dup_gap: Optional[float] = None


class FaultInjector:
    """Draws per-packet faults for one :class:`FaultPlan`."""

    def __init__(self, env, plan: FaultPlan) -> None:
        self.env = env
        self.plan = plan
        self.streams = StreamRegistry(plan.seed)
        self.stats = FaultStats()
        #: Optional Tracer; fault events appear as instant marks on
        #: FAULT_TRACK in exported timelines.
        self.tracer = None

    # -- helpers -----------------------------------------------------------
    def _mark(self, name: str) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.mark(FAULT_TRACK, name)

    @staticmethod
    def _taint(packet: "Packet") -> None:
        """Mark the packet's message corrupted (fragment lost/damaged)."""
        desc = packet.message
        if desc is not None and hasattr(desc, "corrupted"):
            desc.corrupted = True

    # -- network choke point ----------------------------------------------
    def on_route(
        self, packet: "Packet", route: List[Tuple[int, int]]
    ) -> Optional[RouteAction]:
        """Decide the fate of one routed packet.  None = no fault."""
        plan = self.plan
        if packet.kind not in plan.kinds:
            return None
        window = plan.down_window_for(self.env.now) if plan.down else None
        if window is not None:
            for link in route:
                if window.matches(link):
                    self.stats.link_down_drops += 1
                    if not packet.is_last:
                        self._taint(packet)
                    self._mark("fault.link_down_drop")
                    return RouteAction(drop=True)
        action: Optional[RouteAction] = None
        for link in route:
            rates = plan.rates_for(link)
            if rates.total == 0.0:
                continue
            stream = self.streams.stream(f"link.{link[0]}.{link[1]}")
            u = stream.uniform()
            edge = rates.drop
            if u < edge:
                self.stats.dropped += 1
                if not packet.is_last:
                    self._taint(packet)
                self._mark("fault.drop")
                return RouteAction(drop=True)
            edge += rates.duplicate
            if u < edge:
                self.stats.duplicated += 1
                self._mark("fault.duplicate")
                action = action or RouteAction()
                if action.dup_gap is None:
                    action.dup_gap = stream.exponential(plan.delay_mean_cycles)
                continue
            edge += rates.delay
            if u < edge:
                self.stats.delayed += 1
                self._mark("fault.delay")
                action = action or RouteAction()
                action.extra_delay += stream.exponential(plan.delay_mean_cycles)
                continue
            edge += rates.reorder
            if u < edge:
                # A reorder is a long hold-back: later traffic on the
                # same flow overtakes this packet.
                self.stats.reordered += 1
                self._mark("fault.reorder")
                action = action or RouteAction()
                action.extra_delay += stream.exponential(plan.reorder_mean_cycles)
                continue
            edge += rates.corrupt
            if u < edge:
                self.stats.corrupted += 1
                self._taint(packet)
                self._mark("fault.corrupt")
                action = action or RouteAction()
        return action

    # -- MU reception choke point ------------------------------------------
    def on_reception(self, node_id: int, fifo_id: int, packet: "Packet") -> Optional[str]:
        """Fate of a packet entering a reception FIFO: None/"drop"/"dup"."""
        plan = self.plan
        if packet.kind not in plan.kinds:
            return None
        rates = plan.fifo_rates_for(node_id, fifo_id)
        if rates.total == 0.0:
            return None
        u = self.streams.stream(f"rfifo.{node_id}.{fifo_id}").uniform()
        if u < rates.drop:
            self.stats.fifo_dropped += 1
            if not packet.is_last:
                self._taint(packet)
            self._mark("fault.fifo_drop")
            return "drop"
        if u < rates.drop + rates.duplicate:
            self.stats.fifo_duplicated += 1
            self._mark("fault.fifo_duplicate")
            return "dup"
        return None
