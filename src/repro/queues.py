"""Lockless producer-consumer queues over L2 atomics (§III-A, Fig. 2).

Three queue flavours, matching the paper's comparison:

* :class:`MutexQueue` — the "typical" implementation: a deque guarded by
  a pthread mutex.  The mutex becomes a bottleneck when several peers
  simultaneously send to the same rank.

* :class:`L2AtomicQueue` — the paper's Charm++ queue.  A fixed vector of
  message-pointer slots plus a pair of adjacent L2 counters: the
  *producer counter* and the *bound*.  A producer performs one bounded
  load-increment; the returned old value modulo the queue size is its
  slot.  The consumer dequeues and then advances the bound, re-enabling
  producers.  When the bounded increment fails (queue full) producers
  fall back to a mutex-protected *overflow queue*.  Because Charm++ has
  **no message-ordering requirement**, the consumer only touches the
  overflow queue when the L2 queue is empty — the overflow mutex is off
  the fast path entirely.

* :class:`MPIOrderedQueue` — the PAMI/MPI variant.  MPI match ordering
  requires that a consumer never overtake messages parked in the
  overflow queue, so every dequeue must lock the overflow queue and
  check it *before* advancing the bound — the extra overhead the paper
  calls out when contrasting with the Charm++ design.

All operations are generator-style and charge both the L2 atomic
latencies (via the :class:`~repro.bgq.l2.L2AtomicUnit`) and the software
instruction counts (via the calling :class:`~repro.bgq.node.HWThread`),
so contention *emerges* in the simulation rather than being assumed.

Provenance: §III-A and Fig. 2 of the paper (the L2 queue design and the
Charm++-vs-MPI ordering contrast); the Fig. 8 ablation flips these
queues off.  Every queue keeps native ``enqueues``/``dequeues``
statistics (and the per-node L2 unit counts its atomic ops); when
tracing is enabled the Converse runtime snapshots them into the
``queue.*`` / ``l2.atomic_ops`` counters of the global
:class:`repro.trace.Tracer` at the end of the run (docs/TRACING.md).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from .bgq.l2 import BOUNDED_INCREMENT_FAILED, L2AtomicUnit
from .bgq.node import HWThread
from .bgq.params import BGQParams, DEFAULT_PARAMS
from .bgq.wakeup import WakeupSource
from .sim import Environment, Mutex

__all__ = ["MutexQueue", "L2AtomicQueue", "MPIOrderedQueue"]

#: Small fixed software cost (instructions) around each queue operation
#: (pointer write, index arithmetic).
_SLOT_INSTR = 12.0


class _QueueBase:
    """Common bookkeeping: stats + consumer wakeup source."""

    def __init__(self, env: Environment, name: str, params: BGQParams) -> None:
        self.env = env
        self.name = name
        self.params = params
        self.enqueues = 0
        self.dequeues = 0
        self.overflow_enqueues = 0
        #: Signalled on every enqueue so consumers (comm threads, idle
        #: worker threads) can sleep/poll on it.
        self.wakeup = WakeupSource(env, name=f"{name}-wakeup", params=params)

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def empty(self) -> bool:
        return len(self) == 0

    def has_ready(self) -> bool:
        """Could :meth:`dequeue` deliver an item or charge work *now*?

        Consumers (the Converse scheduler loop, ``PamiContext.advance``)
        use this to skip spawning a dequeue generator when the call
        would provably return ``None`` without simulating any events —
        a pure host-side saving with zero effect on the simulated
        trajectory.  The base implementation is conservatively ``True``:
        a :class:`MutexQueue` dequeue pays the mutex acquire even when
        empty, so it must always actually run.
        """
        return True


class MutexQueue(_QueueBase):
    """Baseline: deque + pthread mutex (what the paper replaces)."""

    def __init__(
        self,
        env: Environment,
        name: str = "mutexq",
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        super().__init__(env, name, params)
        self._items: Deque[Any] = deque()
        self.lock = Mutex(env, name=f"{name}-lock")

    def __len__(self) -> int:
        return len(self._items)

    def enqueue(self, thread: HWThread, item: Any):
        p = self.params
        yield from thread.compute(p.mutex_acquire_instr)
        yield from self.lock.acquire()
        yield from thread.compute(_SLOT_INSTR)
        self._items.append(item)
        yield from thread.compute(p.mutex_release_instr)
        self.lock.release_nowait()
        self.enqueues += 1
        self.wakeup.signal()

    def dequeue(self, thread: HWThread):
        """Non-blocking; returns an item or None."""
        p = self.params
        yield from thread.compute(p.mutex_acquire_instr)
        yield from self.lock.acquire()
        item = self._items.popleft() if self._items else None
        yield from thread.compute(p.mutex_release_instr)
        self.lock.release_nowait()
        if item is not None:
            self.dequeues += 1
        return item


class L2AtomicQueue(_QueueBase):
    """The paper's lockless queue (single consumer, many producers)."""

    def __init__(
        self,
        env: Environment,
        l2: L2AtomicUnit,
        size: int = 1024,
        name: Optional[str] = None,
        params: BGQParams = DEFAULT_PARAMS,
    ) -> None:
        if size < 1:
            raise ValueError("queue size must be >= 1")
        # Anonymous names come from the owning L2 unit's counter, so
        # they are stable per-environment regardless of what other
        # simulations ran earlier in this process.
        name = name or f"l2q{next(l2.anon_queue_ids)}"
        super().__init__(env, name, params)
        self.l2 = l2
        self.size = size
        #: Producer counter with adjacent bound word (Fig. 2): the bound
        #: starts at `size` — the counter may be incremented up to it.
        self.counter = l2.allocate(f"{name}-prod", value=0, bound=size)
        self.slots: List[Any] = [None] * size
        self._consumed = 0  # consumer-private dequeue count (no atomics)
        self.overflow: Deque[Any] = deque()
        self.overflow_lock = Mutex(env, name=f"{name}-overflow-lock")

    def __len__(self) -> int:
        return (self.l2.peek(self.counter) - self._consumed) + len(self.overflow)

    # -- producer side ---------------------------------------------------
    def enqueue(self, thread: HWThread, item: Any):
        p = self.params
        got = yield from self.l2.load_increment_bounded(self.counter)
        if got is BOUNDED_INCREMENT_FAILED:
            # Queue full: take the overflow path (mutex-protected).
            yield from thread.compute(p.mutex_acquire_instr)
            yield from self.overflow_lock.acquire()
            yield from thread.compute(_SLOT_INSTR)
            self.overflow.append(item)
            yield from thread.compute(p.mutex_release_instr)
            self.overflow_lock.release_nowait()
            self.overflow_enqueues += 1
        else:
            yield from thread.compute(_SLOT_INSTR)
            self.slots[got % self.size] = item
        self.enqueues += 1
        self.wakeup.signal()

    # -- consumer side (single consumer by construction) -------------------
    def _l2_nonempty(self) -> bool:
        return self.l2.peek(self.counter) > self._consumed

    def has_ready(self) -> bool:
        """Mirror of :meth:`dequeue`'s progress test, without side effects."""
        if self.l2.peek(self.counter) > self._consumed:
            if self.slots[self._consumed % self.size] is not None:
                return True
            # Head slot in-flight: deliverable only via the overflow path.
        return bool(self.overflow)

    def dequeue(self, thread: HWThread):
        """Non-blocking dequeue; returns an item or None.

        Charm++ semantics: the overflow queue is only examined when the
        L2 atomic queue cannot deliver (no ordering requirement),
        keeping the mutex off the fast path.
        """
        p = self.params
        if self._l2_nonempty():
            slot = self._consumed % self.size
            item = self.slots[slot]
            if item is not None:
                self.slots[slot] = None
                self._consumed += 1
                yield from thread.compute(_SLOT_INSTR)
                # Re-enable one producer slot: advance the bound.
                yield from self.l2.store_add_bound(self.counter, 1)
                self.dequeues += 1
                return item
            # Producer won the increment but has not written the pointer
            # yet.  Fall through to the overflow queue: Charm++ has no
            # ordering requirement, so messages parked there are still
            # deliverable — one stalled producer must not starve them.
        if self.overflow:
            yield from thread.compute(p.mutex_acquire_instr)
            yield from self.overflow_lock.acquire()
            item = self.overflow.popleft() if self.overflow else None
            yield from thread.compute(p.mutex_release_instr)
            self.overflow_lock.release_nowait()
            if item is not None:
                self.dequeues += 1
            return item
        return None


class MPIOrderedQueue(L2AtomicQueue):
    """PAMI's MPI-ordered variant: overflow check on *every* dequeue.

    MPI match ordering means a message parked in the overflow queue must
    not be overtaken by a later L2-queue message, so the consumer locks
    and checks the overflow queue before advancing the bound — paying
    the mutex on the fast path the Charm++ queue avoids (§III-A).
    """

    def has_ready(self) -> bool:
        # Ordered semantics: an in-flight head slot blocks delivery (no
        # overtaking), so a dequeue then returns None with zero events.
        if self.l2.peek(self.counter) > self._consumed:
            return self.slots[self._consumed % self.size] is not None
        return bool(self.overflow)

    def dequeue(self, thread: HWThread):
        p = self.params
        if self._l2_nonempty():
            slot = self._consumed % self.size
            item = self.slots[slot]
            if item is None:
                return None
            self.slots[slot] = None
            self._consumed += 1
            yield from thread.compute(_SLOT_INSTR)
            # The ordering requirement: before advancing the bound, lock
            # and inspect the overflow queue (a later producer must not
            # lap a message parked there).  This lock/check on the fast
            # path is exactly the overhead the Charm++ queue avoids
            # (the match-order bookkeeping itself is not modelled).
            yield from thread.compute(p.mutex_acquire_instr)
            yield from self.overflow_lock.acquire()
            yield from thread.compute(_SLOT_INSTR)  # the ordering check
            yield from thread.compute(p.mutex_release_instr)
            self.overflow_lock.release_nowait()
            yield from self.l2.store_add_bound(self.counter, 1)
            self.dequeues += 1
            return item
        if self.overflow:
            yield from thread.compute(p.mutex_acquire_instr)
            yield from self.overflow_lock.acquire()
            item = self.overflow.popleft() if self.overflow else None
            yield from thread.compute(p.mutex_release_instr)
            self.overflow_lock.release_nowait()
            if item is not None:
                self.dequeues += 1
            return item
        return None
