"""Chares and chare arrays: the Charm++ programming model.

Application computation lives in C++-object-like *chares* grouped into
indexed *chare arrays*; the runtime maps elements to PEs (the load
balancer's job, relieving the programmer of processor mapping) and
entry-method invocations travel as asynchronous messages.  Within an
SMP process an invocation is a pointer exchange; across processes it is
packed and sent through the machine layer.

Entry methods here are ordinary Python methods; a method may be a
generator, in which case the yields are simulation events (typically
``self.charge(instr)`` for compute time or nested sends).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, TYPE_CHECKING

from ..faults.qos import QOS_BEST_EFFORT_FRESH

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Charm

__all__ = ["Chare", "ChareArray"]


class Chare:
    """Base class for application chares.

    Subclasses define entry methods; the runtime injects ``_array``,
    ``_index`` and ``_pe`` when the element is created.
    """

    _array: "ChareArray"
    _index: Hashable
    _pe: Any  # converse PE

    # -- identity ----------------------------------------------------------
    @property
    def thisIndex(self) -> Hashable:
        return self._index

    @property
    def pe_rank(self) -> int:
        return self._pe.rank

    @property
    def charm(self) -> "Charm":
        return self._array.charm

    @property
    def env(self):
        return self._array.charm.env

    # -- actions usable inside entry methods ---------------------------------
    def charge(self, instructions: float):
        """Consume compute time on this chare's PE (generator)."""
        result = yield from self._pe.thread.compute(instructions)
        return result

    def send(
        self, index: Hashable, method: str, nbytes: int, *args: Any,
        qos: Optional[int] = None, fresh_key: Any = None,
    ):
        """Invoke ``method(*args)`` on element ``index`` of this array.

        ``qos``/``fresh_key`` select per-send delivery semantics
        (:mod:`repro.faults.qos`); None inherits the entry method's
        registered default (``Charm.set_entry_qos``).
        """
        yield from self._array.send_from(
            self._pe, index, method, nbytes, *args, qos=qos, fresh_key=fresh_key
        )

    def send_prioritized(
        self, index: Hashable, method: str, nbytes: int, priority: int, *args: Any
    ):
        """Invoke an entry method with a Charm++-style priority
        (smaller values run first on the destination PE)."""
        yield from self._array.send_from(
            self._pe, index, method, nbytes, *args, priority=priority
        )

    def send_to(
        self, array: "ChareArray", index: Hashable, method: str, nbytes: int, *args: Any
    ):
        """Invoke an entry method on an element of another array."""
        yield from array.send_from(self._pe, index, method, nbytes, *args)

    def contribute(self, value: Any, op: str, tag: Hashable, target) -> Any:
        """Contribute to a reduction over this array (generator).

        ``target`` is ``(array, index, method)`` or a plain callable
        invoked at the root PE.
        """
        yield from self.charm.reductions.contribute(
            self._array, self._pe, value, op, tag, target
        )


class ChareArray:
    """An indexed collection of chares mapped over the PEs."""

    def __init__(
        self,
        charm: "Charm",
        name: str,
        factory: Callable[[Hashable], Chare],
        indices: Iterable[Hashable],
        map_fn: Callable[[Hashable, int, int], int],
    ) -> None:
        self.charm = charm
        self.name = name
        self.indices: List[Hashable] = list(indices)
        if not self.indices:
            raise ValueError(f"chare array {name!r} needs at least one element")
        npes = len(charm.runtime.pes)
        self.elements: Dict[Hashable, Chare] = {}
        self.home: Dict[Hashable, int] = {}
        for i, idx in enumerate(self.indices):
            pe_rank = map_fn(idx, i, npes)
            if not 0 <= pe_rank < npes:
                raise ValueError(
                    f"map placed element {idx!r} on invalid PE {pe_rank}"
                )
            chare = factory(idx)
            chare._array = self
            chare._index = idx
            chare._pe = charm.runtime.pes[pe_rank]
            self.elements[idx] = chare
            self.home[idx] = pe_rank

    def __len__(self) -> int:
        return len(self.indices)

    def element(self, index: Hashable) -> Chare:
        return self.elements[index]

    def pe_of(self, index: Hashable) -> int:
        return self.home[index]

    def local_indices(self, pe_rank: int) -> List[Hashable]:
        return [i for i in self.indices if self.home[i] == pe_rank]

    # -- messaging ---------------------------------------------------------
    def send_from(
        self, src_pe, index: Hashable, method: str, nbytes: int, *args: Any,
        priority: int = 0, qos: Optional[int] = None, fresh_key: Any = None,
    ):
        """Send an entry-method invocation from ``src_pe`` (generator).

        FRESH sends default their supersede flow to ``(array, index,
        method)`` so each destination element is its own flow even when
        many chares share a PE.
        """
        if index not in self.elements:
            raise KeyError(f"no element {index!r} in array {self.name!r}")
        dst_rank = self.home[index]
        payload = (self.name, index, method, args)
        if qos == QOS_BEST_EFFORT_FRESH and fresh_key is None:
            fresh_key = (self.name, index, method)
        yield from self.charm.runtime.send(
            src_pe, dst_rank, self.charm.entry_handler_id(method), nbytes, payload,
            priority=priority, qos=qos, fresh_key=fresh_key,
        )

    def broadcast_from(self, src_pe, method: str, nbytes: int, *args: Any):
        """Invoke ``method`` on every element via a spanning tree.

        Uses a cached full-array multicast section: one message per
        hosting PE (tree edge), local pointer-exchange fan-out — how
        Charm++ implements array broadcasts.
        """
        section = getattr(self, "_bcast_section", None)
        if section is None:
            section = self.charm.create_section(self, self.indices)
            self._bcast_section = section
        yield from section.multicast_from(src_pe, method, nbytes, *args)
