"""The Charm++ facade: arrays, entry methods, reductions, run control."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Union

from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..converse import CmiDirectManytomany, ConverseRuntime, RunConfig
from ..converse.messages import ConverseMessage
from ..sim import Environment, Event
from .chare import Chare, ChareArray
from .group import Group
from .loadbalancer import blocked_map, round_robin_map
from .reduction import ReductionManager
from .section import Section

__all__ = ["Charm"]


class Charm:
    """A Charm++ application instance on a simulated BG/Q partition.

    Typical use::

        charm = Charm(RunConfig(nnodes=2, workers_per_process=4))
        arr = charm.create_array("workers", Worker, range(16))
        charm.seed(arr, 0, "start")
        result = charm.run()          # until charm.exit(...) is called
    """

    def __init__(
        self,
        config: RunConfig,
        params: BGQParams = DEFAULT_PARAMS,
        env: Optional[Environment] = None,
        machine=None,
    ) -> None:
        self.env = env or Environment()
        self.params = params
        self.config = config
        self.runtime = ConverseRuntime(self.env, config, params, machine=machine)
        self.cmidirect = CmiDirectManytomany(self.runtime)
        self.arrays: Dict[str, ChareArray] = {}
        self.reductions = ReductionManager(self)
        self._entry_hids: Dict[str, int] = {}
        self._categories: Dict[str, str] = {}
        self._entry_qos: Dict[str, int] = {}
        self._sections: Dict[int, Section] = {}
        self._section_hid: Optional[int] = None
        self.done: Event = self.env.event()
        self._started = False
        # Per-instance id sources (never module/class globals): two
        # Charm instances in one process — e.g. sharded SPMD mirrors —
        # must mint identical ids for identical construction sequences.
        self._section_counter = itertools.count()
        self._uid_counter = itertools.count(1)
        #: Entry methods executed.  Native statistic (always counted);
        #: snapshotted into the tracer's ``charm.entries`` counter.
        self.entries_executed = 0
        if self.runtime.tracer is not None:
            self.runtime.tracer.add_finalizer(self._flush_stats)

    def _flush_stats(self) -> None:
        """Snapshot Charm-layer statistics into the tracer (idempotent)."""
        if self.entries_executed:
            self.runtime.tracer.counters["charm.entries"] = self.entries_executed

    # -- entry-method plumbing ---------------------------------------------
    def set_entry_category(self, method_name: str, category: str) -> None:
        """Label a method's timeline segments (integrate/nonbonded/pme...).

        Must be called before the first send of that method.
        """
        if method_name in self._entry_hids:
            raise RuntimeError(
                f"method {method_name!r} already has a registered handler"
            )
        self._categories[method_name] = category

    def set_entry_qos(self, method_name: str, qos) -> None:
        """Set an entry method's default delivery semantics.

        ``qos`` is a :mod:`repro.faults.qos` constant or name
        ("reliable" / "best_effort" / "fresh").  Must be called before
        the first send of that method; per-send ``qos=`` overrides it.
        """
        from ..faults.qos import parse_qos

        if method_name in self._entry_hids:
            raise RuntimeError(
                f"method {method_name!r} already has a registered handler"
            )
        self._entry_qos[method_name] = parse_qos(qos)

    def register_entries(self, method_names: Iterable[str]) -> None:
        """Pre-register entry handlers in a fixed order.

        Handler ids normally get allocated lazily at the first send of
        each method, so the allocation order depends on the message
        trajectory.  Sharded SPMD runs construct one Charm mirror per
        shard and carry handler ids inside payloads across shards, so
        every mirror must agree on the ids: call this right after app
        construction with the complete entry-method list, in one fixed
        order, on every shard.  Registration itself schedules nothing —
        it is simulation-neutral.
        """
        for name in method_names:
            self.entry_handler_id(name)

    def entry_handler_id(self, method_name: str) -> int:
        hid = self._entry_hids.get(method_name)
        if hid is None:
            from ..faults.qos import QOS_RELIABLE

            hid = self.runtime.register_handler(
                self._make_entry_handler(method_name),
                category=self._categories.get(method_name, "compute"),
                qos=self._entry_qos.get(method_name, QOS_RELIABLE),
            )
            self._entry_hids[method_name] = hid
        return hid

    def _make_entry_handler(self, method_name: str) -> Callable:
        charm = self

        def entry(pe, msg):
            array_name, index, method, args = msg.payload
            array = charm.arrays[array_name]
            chare = array.elements[index]
            charm.entries_executed += 1
            yield from pe.thread.compute(charm.params.charm_entry_instr)
            t0 = charm.env.now
            result = getattr(chare, method)(*args)
            if result is not None and hasattr(result, "__next__"):
                yield from result
            # Per-chare load metering (feeds the greedy load balancer).
            chare._load = getattr(chare, "_load", 0.0) + (charm.env.now - t0)

        entry.__name__ = f"entry_{method_name}"
        return entry

    def next_uid(self) -> int:
        """Allocate a small per-instance unique id (array names, m2m
        tags).  Scoped to this Charm so concurrent instances in one
        process mint identical ids for identical construction order."""
        return next(self._uid_counter)

    # -- array creation ------------------------------------------------------
    def create_array(
        self,
        name: str,
        factory: Callable[[Hashable], Chare],
        indices: Iterable[Hashable],
        map_fn: Union[str, Callable, None] = None,
    ) -> ChareArray:
        """Create a chare array; ``map_fn`` may be "blocked" (default),
        "round_robin", or a custom ``(index, ordinal, npes) -> pe`` map."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already exists")
        indices = list(indices)
        if map_fn is None or map_fn == "blocked":
            map_fn = blocked_map(len(indices))
        elif map_fn == "round_robin":
            map_fn = round_robin_map()
        elif isinstance(map_fn, str):
            raise ValueError(f"unknown map {map_fn!r}")
        array = ChareArray(self, name, factory, indices, map_fn)
        self.arrays[name] = array
        return array

    def create_group(self, name: str, factory: Callable[[int], Chare]) -> Group:
        """Create a group: one chare per PE, indexed by PE rank."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already exists")
        group = Group(self, name, factory)
        self.arrays[name] = group
        return group

    # -- section multicast plumbing --------------------------------------------
    def create_section(self, array: ChareArray, indices) -> Section:
        """Create a multicast section over a subset of an array."""
        return Section(self, array, indices)

    def _register_section(self, section: Section) -> None:
        self._sections[section.section_id] = section

    def section_handler_id(self) -> int:
        if self._section_hid is None:
            charm = self

            def section_handler(pe, msg):
                section_id, method, args, nbytes, qos = msg.payload
                section = charm._sections.get(section_id)
                if section is None:
                    raise RuntimeError(f"unknown section {section_id}")
                yield from section._deliver(pe, method, args, nbytes, qos)

            self._section_hid = self.runtime.register_handler(
                section_handler, category="comm"
            )
        return self._section_hid

    # -- run control -------------------------------------------------------------
    def seed(self, array: ChareArray, index: Hashable, method: str, *args: Any) -> None:
        """Queue an initial entry-method invocation (before start())."""
        hid = self.entry_handler_id(method)
        pe = self.runtime.pes[array.pe_of(index)]
        if pe is None:
            # Sharded run: this mirror does not own the seeded PE — the
            # shard that does seeds it (hid above was still allocated,
            # keeping handler-id allocation identical across mirrors).
            return
        payload = (array.name, index, method, args)
        rec = self.runtime.tracer
        msg_id = None
        if rec is not None:
            # Seeds are the roots of the causal DAG: stamp + record a
            # send/recv pair at t=0 so critical paths start somewhere.
            pe.msg_seq += 1
            msg_id = (pe.rank, pe.msg_seq)
            rec.msg_send(msg_id, pe.rank, pe.rank, 0)
            rec.msg_recv(msg_id, pe.rank)
        pe.local_q.append(
            ConverseMessage(hid, 0, payload, pe.rank, pe.rank, msg_id=msg_id)
        )

    def exit(self, value: Any = None) -> None:
        """CkExit: end the run; :meth:`run` returns ``value``."""
        if not self.done.triggered:
            self.done.succeed(value)

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.runtime.start()

    def run(self, until: Optional[Union[float, Event]] = None) -> Any:
        """Start the runtime and run until ``charm.exit`` (default)."""
        self.start()
        value = self.env.run(until=until if until is not None else self.done)
        self.runtime.stop()
        return value

    # -- load balancing ------------------------------------------------------
    def measured_loads(self, array: ChareArray):
        """Per-element accumulated entry-method time (cycles).

        Feed to :func:`repro.charm.greedy_rebalance` to compute an
        improved placement for the next run.
        """
        return [(idx, getattr(array.element(idx), "_load", 0.0)) for idx in array.indices]

    @property
    def recorder(self):
        return self.runtime.recorder

    @property
    def tracer(self):
        """The run's Projections-style tracer (None when tracing is off)."""
        return self.runtime.tracer

    @property
    def npes(self) -> int:
        return len(self.runtime.pes)
