"""Reductions over chare arrays.

Charm++ reductions combine per-element contributions PE-locally first
(free in SMP — shared address space), then merge partials up a binomial
tree of PEs with small messages, delivering the result at the root to a
callback or an entry method.  NAMD's integration step uses this pattern
every timestep.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, TYPE_CHECKING
from types import MappingProxyType

if TYPE_CHECKING:  # pragma: no cover
    from .chare import ChareArray
    from .runtime import Charm

__all__ = ["ReductionManager", "REDUCERS"]


def _sum(a, b):
    return a + b


def _max(a, b):
    return a if a >= b else b


def _min(a, b):
    return a if a <= b else b


def _concat(a, b):
    return list(a) + list(b)


REDUCERS: Dict[str, Callable[[Any, Any], Any]] = MappingProxyType({
    "sum": _sum,
    "max": _max,
    "min": _min,
    "concat": _concat,
})

#: Size of a partial-reduction tree message on the wire.
_PARTIAL_BYTES = 64


class _State:
    """Progress of one reduction (one array, one tag) on one PE."""

    __slots__ = ("value", "local_count", "children_received", "sent")

    def __init__(self) -> None:
        self.value: Any = None
        self.local_count = 0
        self.children_received = 0
        self.sent = False

    def merge(self, op: Callable, value: Any) -> None:
        self.value = value if self.value is None else op(self.value, value)


class ReductionManager:
    """Array reductions over the Converse runtime."""

    def __init__(self, charm: "Charm") -> None:
        self.charm = charm
        #: (array_name, tag) -> pe_rank -> _State
        self._states: Dict[Tuple[str, Hashable], Dict[int, _State]] = {}
        #: (array_name, tag) -> target (captured at first contribute)
        self._targets: Dict[Tuple[str, Hashable], Any] = {}
        self._ops: Dict[Tuple[str, Hashable], str] = {}
        self._partial_hid = charm.runtime.register_handler(
            self._partial_handler, category="comm"
        )
        self.completed = 0

    # -- tree shape -----------------------------------------------------------
    def _participants(self, array: "ChareArray") -> List[int]:
        return sorted({array.home[i] for i in array.indices})

    def _tree(self, array: "ChareArray", pe_rank: int) -> Tuple[Optional[int], int]:
        """Return (parent_pe_rank_or_None, n_children) in a binary tree
        over the participating PEs."""
        parts = self._participants(array)
        pos = parts.index(pe_rank)
        parent = None if pos == 0 else parts[(pos - 1) // 2]
        n_children = sum(1 for c in (2 * pos + 1, 2 * pos + 2) if c < len(parts))
        return parent, n_children

    # -- contribution (runs on the contributing element's PE) -------------------
    def contribute(self, array, pe, value, op: str, tag, target):
        if op not in REDUCERS:
            raise ValueError(f"unknown reduction op {op!r}")
        key = (array.name, tag)
        states = self._states.setdefault(key, {})
        self._targets.setdefault(key, target)
        self._ops.setdefault(key, op)
        st = states.setdefault(pe.rank, _State())
        st.merge(REDUCERS[op], value)
        st.local_count += 1
        yield from self._maybe_forward(array, pe, key)

    def _maybe_forward(self, array, pe, key):
        st = self._states[key][pe.rank]
        expected_local = len(array.local_indices(pe.rank))
        parent, n_children = self._tree(array, pe.rank)
        if st.sent or st.local_count < expected_local or st.children_received < n_children:
            return
        st.sent = True
        if parent is None:
            yield from self._deliver(array, pe, key, st.value)
        else:
            # The op rides in the payload: a child's partial can reach
            # the parent PE before any local contribute() has registered
            # the op there (message race — see _partial_handler).
            payload = (array.name, key[1], st.value, self._ops[key])
            yield from self.charm.runtime.send(
                pe, parent, self._partial_hid, _PARTIAL_BYTES, payload
            )

    def _partial_handler(self, pe, msg):
        array_name, tag, value, op = msg.payload
        array = self.charm.arrays[array_name]
        key = (array_name, tag)
        # A partial may be the first event for this key on this PE (the
        # local elements haven't contributed yet): learn the op from the
        # message instead of requiring local registration first.
        self._ops.setdefault(key, op)
        st = self._states.setdefault(key, {}).setdefault(pe.rank, _State())
        st.merge(REDUCERS[op], value)
        st.children_received += 1
        yield from self._maybe_forward(array, pe, key)

    def _deliver(self, array, pe, key, value):
        target = self._targets[key]
        # Clean up so the tag can be reused next iteration.
        del self._states[key]
        del self._targets[key]
        del self._ops[key]
        self.completed += 1
        if callable(target):
            result = target(value)
            if result is not None and hasattr(result, "__next__"):
                yield from result
        else:
            tgt_array, index, method = target
            yield from tgt_array.send_from(pe, index, method, _PARTIAL_BYTES, value)
