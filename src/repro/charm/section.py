"""Section multicast: spanning-tree delivery to a subset of an array.

Charm++'s CkMulticast: a *section* names a subset of a chare array;
multicasts travel down a spanning tree of the PEs hosting members (one
message per tree edge) and fan out locally by pointer exchange — the
pattern NAMD's patch-to-computes position multicast uses.  Contrast
with naive per-element sends: a section multicast costs O(PEs-in-
section) network messages instead of O(members).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .chare import ChareArray
    from .runtime import Charm

__all__ = ["Section"]

#: Fan-out of the spanning tree over PEs.
_TREE_ARITY = 4


class Section:
    """A multicast section over a subset of a chare array."""

    def __init__(self, charm: "Charm", array: "ChareArray", indices: Sequence[Hashable]):
        self.charm = charm
        self.array = array
        self.indices = list(indices)
        if not self.indices:
            raise ValueError("a section needs at least one member")
        missing = [i for i in self.indices if i not in array.elements]
        if missing:
            raise KeyError(f"section members not in array: {missing!r}")
        # Per-Charm counter (not a module global): section ids ride in
        # message payloads, so concurrent Charm instances in one process
        # must each start from 0 (see Charm.__init__).
        self.section_id = next(charm._section_counter)
        #: PEs hosting members, in deterministic order (tree nodes).
        self.pes: List[int] = sorted({array.pe_of(i) for i in self.indices})
        #: Members per PE for the local fan-out.
        self.local_members: Dict[int, List[Hashable]] = {}
        for idx in self.indices:
            self.local_members.setdefault(array.pe_of(idx), []).append(idx)
        charm._register_section(self)
        self.multicasts = 0

    # -- tree shape -----------------------------------------------------------
    def children_of(self, pe_rank: int) -> List[int]:
        pos = self.pes.index(pe_rank)
        out = []
        for k in range(1, _TREE_ARITY + 1):
            c = pos * _TREE_ARITY + k
            if c < len(self.pes):
                out.append(self.pes[c])
        return out

    @property
    def root_pe(self) -> int:
        return self.pes[0]

    # -- multicast -----------------------------------------------------------
    def multicast_from(self, src_pe, method: str, nbytes: int, *args: Any,
                       qos: Optional[int] = None):
        """Deliver ``method(*args)`` to every member (generator).

        One message to the tree root, then one per tree edge; members
        co-located with a tree node receive by local invocation.
        ``qos`` (a :mod:`repro.faults.qos` constant) rides in the
        payload so every tree edge uses the same delivery semantics;
        None means reliable.
        """
        self.multicasts += 1
        hid = self.charm.section_handler_id()
        payload = (self.section_id, method, args, nbytes, qos)
        yield from self.charm.runtime.send(
            src_pe, self.root_pe, hid, nbytes, payload, qos=qos
        )

    def _deliver(self, pe, method: str, args: tuple, nbytes: int,
                 qos: Optional[int] = None):
        """Runs on a tree-node PE: forward down, then invoke locally."""
        hid = self.charm.section_handler_id()
        payload = (self.section_id, method, args, nbytes, qos)
        for child in self.children_of(pe.rank):
            yield from self.charm.runtime.send(pe, child, hid, nbytes, payload,
                                               qos=qos)
        entry_instr = self.charm.params.charm_entry_instr
        for idx in self.local_members.get(pe.rank, []):
            chare = self.array.element(idx)
            yield from pe.thread.compute(entry_instr)
            result = getattr(chare, method)(*args)
            if result is not None and hasattr(result, "__next__"):
                yield from result
