"""Chare groups: one chare per PE (Charm++ group/nodegroup).

Runtime services and per-PE managers in Charm++ live in *groups* —
arrays with exactly one element per processing element, indexed by PE
rank.  NAMD's patch managers and the PME persistent-communication
managers are groups.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from .chare import Chare, ChareArray

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Charm

__all__ = ["Group"]


class Group(ChareArray):
    """One chare per PE, indexed by PE rank."""

    def __init__(self, charm: "Charm", name: str, factory: Callable[[int], Chare]):
        npes = len(charm.runtime.pes)
        super().__init__(
            charm,
            name,
            factory,
            range(npes),
            map_fn=lambda idx, ordinal, _npes: ordinal,
        )

    def local_element(self, pe_rank: int) -> Chare:
        """The group member on a given PE (every PE has exactly one)."""
        return self.element(pe_rank)
