"""Object-to-PE maps and a measurement-based load balancer.

"In Charm++, application computation is mapped to C++ objects called
chares and the load-balancer maps these objects to processors relieving
the programmer of this burden" [paper §I].  The map functions here have
the Charm++ array-map signature ``(index, ordinal, npes) -> pe_rank``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Tuple

__all__ = ["blocked_map", "round_robin_map", "node_aware_map", "greedy_rebalance"]


def blocked_map(n_elements: int) -> Callable:
    """Contiguous blocks of elements per PE (default Charm++ placement)."""

    def fn(index: Hashable, ordinal: int, npes: int) -> int:
        block = (n_elements + npes - 1) // npes
        return min(ordinal // block, npes - 1)

    return fn


def round_robin_map() -> Callable:
    """Element i -> PE i % npes."""

    def fn(index: Hashable, ordinal: int, npes: int) -> int:
        return ordinal % npes

    return fn


def node_aware_map(pes_per_node: int, n_elements: int) -> Callable:
    """Blocks elements onto nodes, round-robins within the node.

    Keeps communicating neighbours on the same SMP node so their
    messages become pointer exchanges — the placement the Charm++ load
    balancer aims for on BG/Q (§III).
    """
    if pes_per_node < 1:
        raise ValueError("pes_per_node must be >= 1")

    def fn(index: Hashable, ordinal: int, npes: int) -> int:
        nnodes = max(1, npes // pes_per_node)
        per_node = (n_elements + nnodes - 1) // nnodes
        node = min(ordinal // per_node, nnodes - 1)
        within = ordinal % pes_per_node
        return node * pes_per_node + within

    return fn


def greedy_rebalance(
    loads: Sequence[Tuple[Hashable, float]], npes: int
) -> Dict[Hashable, int]:
    """Greedy refinement: heaviest object to the least-loaded PE.

    The classic Charm++ ``GreedyLB`` strategy, usable between iterations
    from measured per-object loads.  Returns an index -> PE map.
    """
    if npes < 1:
        raise ValueError("npes must be >= 1")
    pe_load = [0.0] * npes
    assignment: Dict[Hashable, int] = {}
    for index, load in sorted(loads, key=lambda t: -t[1]):
        target = min(range(npes), key=lambda p: pe_load[p])
        assignment[index] = target
        pe_load[target] += load
    return assignment
