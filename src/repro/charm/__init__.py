"""Charm++-like message-driven programming model over the Converse layer."""

from .chare import Chare, ChareArray
from .group import Group
from .loadbalancer import (
    blocked_map,
    greedy_rebalance,
    node_aware_map,
    round_robin_map,
)
from .reduction import REDUCERS, ReductionManager
from .runtime import Charm
from .section import Section

__all__ = [
    "Chare",
    "ChareArray",
    "Charm",
    "Group",
    "REDUCERS",
    "ReductionManager",
    "Section",
    "blocked_map",
    "greedy_rebalance",
    "node_aware_map",
    "round_robin_map",
]
