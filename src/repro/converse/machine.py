"""The Converse machine layer and runtime for BG/Q (§III).

Assembles everything below it — simulated nodes, PAMI contexts,
communication threads — into a running message-driven system, and
implements the send/receive paths the paper optimizes:

* **intra-process**: pointer exchange into the destination PE's L2
  atomic queue (no serialization, no network);
* **eager network path**: Converse envelope + PAMI active message
  (``send_immediate`` for single-packet messages, ``send`` otherwise),
  dispatch callback at the receiver allocates a buffer and enqueues to
  the destination PE;
* **rendezvous path** (large messages): a short RTS header carries the
  source address; the receiver issues ``PAMI_Rget`` (RDMA read) and,
  on completion, enqueues the message and returns an ACK that lets the
  sender free its buffer;
* **communication-thread offload**: with communication threads enabled,
  workers post send closures to comm-thread contexts (round-robin, so
  one chatty PE's load spreads over all comm threads — §III-C) and
  never touch the network themselves.

Three execution modes, as studied in the paper (§III, Fig. 4):
``RunConfig(workers_per_process=1, processes_per_node=64)`` is non-SMP;
more workers per process is SMP; ``comm_threads_per_process > 0`` adds
dedicated communication threads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..bgq.machine import BGQMachine
from ..bgq.node import HWThread, Node
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..bgq.wakeup import WakeupSource
from ..faults import (
    FAULT_TRACK,
    FaultInjector,
    FaultPlan,
    QOS_BEST_EFFORT_FRESH,
    QOS_RELIABLE,
)
from ..pami.commthread import CommThread
from ..pami.context import AMPayload, Endpoint, PamiClient, PamiContext
from ..pami.manytomany import ManyToManyRegistry
from ..sim import Environment, TimelineRecorder
from ..trace.hpm import install_hpm
from .alloc import make_allocator
from .messages import ConverseMessage
from .scheduler import PE

__all__ = ["RunConfig", "ConverseProcess", "ConverseRuntime"]

# Reserved PAMI dispatch ids for the Converse machine layer.
DISPATCH_EAGER = 1
DISPATCH_RTS = 2
DISPATCH_ACK = 3


def _unique_by_identity(items) -> List[Any]:
    """Order-preserving identity dedup.

    Keeps the first occurrence of each distinct *object* (equal-but-
    distinct objects are all kept).  The result order follows the input
    order — an ``{id(x): x}`` mapping would key the output on interpreter
    memory layout instead (repro-lint D4).
    """
    seen: set = set()
    out: List[Any] = []
    for obj in items:
        key = id(obj)
        if key not in seen:
            seen.add(key)
            out.append(obj)
    return out


@dataclass
class RunConfig:
    """One launch configuration (the paper's "modes").

    The product ``processes_per_node * (workers_per_process +
    comm_threads_per_process)`` must not exceed the node's 64 hardware
    threads.
    """

    nnodes: int = 1
    processes_per_node: int = 1
    workers_per_process: int = 1
    comm_threads_per_process: int = 0
    #: "l2" = the paper's lockless queues; "mutex" = baseline (Fig. 8).
    queue_kind: str = "l2"
    #: "pool" = per-thread L2 pools (§III-B); "gnu" = arena allocator.
    allocator: str = "pool"
    #: "l2" = optimized idle poll (§III-D); "naive" = spin loop.
    idle_poll: str = "l2"
    pe_queue_size: int = 1024
    #: Record per-PE timelines (Figs. 3/9/10); costs memory, off by default.
    record_timeline: bool = False
    #: Enable the Projections-style tracer (spans + named counters +
    #: exporters, see repro.trace).  ``record_timeline`` implies it.
    trace: bool = False
    #: Fault-injection plan (repro.faults).  None falls back to the
    #: ``REPRO_FAULTS`` environment switch; a null plan means no faults.
    fault_plan: Optional[FaultPlan] = None
    #: Sequence-numbered ACK/retransmit transport on every PAMI context.
    #: None = auto: enabled exactly when a fault plan is active, so the
    #: fault-free fast path stays trajectory-identical to older builds.
    reliable: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.queue_kind not in ("l2", "mutex"):
            raise ValueError(f"bad queue_kind {self.queue_kind!r}")
        if self.allocator not in ("pool", "gnu"):
            raise ValueError(f"bad allocator {self.allocator!r}")
        if self.idle_poll not in ("l2", "naive"):
            raise ValueError(f"bad idle_poll {self.idle_poll!r}")
        if min(self.nnodes, self.processes_per_node, self.workers_per_process) < 1:
            raise ValueError("nnodes/processes/workers must be >= 1")
        if self.comm_threads_per_process < 0:
            raise ValueError("comm_threads_per_process must be >= 0")
        if self.processes_per_node * self.threads_per_process > 64:
            raise ValueError(
                "configuration exceeds the 64 hardware threads of a BG/Q node"
            )

    @property
    def threads_per_process(self) -> int:
        return self.workers_per_process + self.comm_threads_per_process

    @property
    def is_smp(self) -> bool:
        return self.threads_per_process > 1

    @property
    def pes_per_node(self) -> int:
        return self.processes_per_node * self.workers_per_process

    @property
    def total_pes(self) -> int:
        return self.nnodes * self.pes_per_node

    def describe(self) -> str:
        if not self.is_smp:
            return f"non-SMP ({self.processes_per_node} proc/node)"
        ct = self.comm_threads_per_process
        return (
            f"SMP {self.processes_per_node}x({self.workers_per_process}w"
            f"+{ct}c)/node" + ("" if ct else " (no comm threads)")
        )


class ConverseProcess:
    """One OS process of the Charm++ job."""

    def __init__(
        self,
        runtime: "ConverseRuntime",
        node: Node,
        proc_index: int,
        thread_base: int,
    ) -> None:
        self.runtime = runtime
        self.node = node
        self.proc_index = proc_index  # index within the node
        cfg = runtime.config
        self.env = runtime.env
        self.params = runtime.params
        self.alloc = make_allocator(node, cfg.allocator, runtime.params)
        self.client = PamiClient(self.env, node, runtime.params)
        self.pes: List[PE] = []

        nthreads = cfg.threads_per_process
        if thread_base + nthreads > node.n_threads:
            raise ValueError(
                f"config needs {nthreads} threads at base {thread_base} but the "
                f"node has {node.n_threads}"
            )
        self.worker_threads = [
            node.thread(thread_base + i) for i in range(cfg.workers_per_process)
        ]
        comm_hw = [
            node.thread(thread_base + cfg.workers_per_process + i)
            for i in range(cfg.comm_threads_per_process)
        ]

        # Context topology (see module docstring).
        self.comm_contexts: List[PamiContext] = []
        self.worker_contexts: List[PamiContext] = []
        self.comm_threads: List[CommThread] = []
        if cfg.comm_threads_per_process > 0:
            for hw in comm_hw:
                ctx = self.client.create_context()
                self.comm_contexts.append(ctx)
                self.comm_threads.append(
                    CommThread(self.env, hw, [ctx], runtime.params)
                )
        else:
            for _ in range(cfg.workers_per_process):
                self.worker_contexts.append(self.client.create_context())

        for ctx in self.contexts:
            ctx.register_dispatch(DISPATCH_EAGER, runtime._eager_dispatch)
            ctx.register_dispatch(DISPATCH_RTS, runtime._rts_dispatch)
            ctx.register_dispatch(DISPATCH_ACK, runtime._ack_dispatch)

        self.m2m = ManyToManyRegistry(
            self.env, self.contexts, self.comm_threads, runtime.params
        )

        #: Rendezvous bookkeeping.
        self._token_counter = itertools.count()
        self.pending_sends: Dict[int, Any] = {}
        #: Per-source-PE round-robin over comm contexts.
        self._send_rr = 0

    @property
    def contexts(self) -> List[PamiContext]:
        return self.comm_contexts if self.comm_contexts else self.worker_contexts

    @property
    def is_smp(self) -> bool:
        return self.runtime.config.is_smp

    def inbound_endpoint(self, local_pe_index: int) -> Endpoint:
        """Which context endpoint remote senders target for a local PE."""
        if self.comm_contexts:
            return self.comm_contexts[local_pe_index % len(self.comm_contexts)].endpoint
        return self.worker_contexts[local_pe_index].endpoint

    def next_send_context(self) -> PamiContext:
        """Round-robin comm-thread context for the next offloaded send."""
        ctx = self.comm_contexts[self._send_rr % len(self.comm_contexts)]
        self._send_rr += 1
        return ctx

    def new_token(self) -> int:
        return next(self._token_counter)


class ConverseRuntime:
    """The running Charm++/Converse job over a simulated BG/Q partition."""

    def __init__(
        self,
        env: Environment,
        config: RunConfig,
        params: BGQParams = DEFAULT_PARAMS,
        machine: Optional[BGQMachine] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.params = params
        self.machine = machine or BGQMachine(env, config.nnodes, params)
        if self.machine.nnodes != config.nnodes:
            raise ValueError("machine/config node count mismatch")
        per_node_threads = config.processes_per_node * config.threads_per_process
        if per_node_threads > params.threads_per_node:
            raise ValueError(
                f"{per_node_threads} threads/node requested, hardware has "
                f"{params.threads_per_node}"
            )

        self.handlers: List[Callable] = []
        self.handler_categories: Dict[int, str] = {}
        #: Per-handler default delivery semantics (repro.faults.qos);
        #: unregistered ids default to QOS_RELIABLE.
        self.handler_qos: Dict[int, int] = {}
        #: Cumulative machine-layer sends (quiescence accounting).
        #: Counts reliable sends only: a best-effort send may legally
        #: never be executed anywhere, so charging it to `created`
        #: would wedge the detector's `processed >= created` condition.
        self.messages_sent = 0
        #: Best-effort / FRESH sends (never in quiescence `created`).
        self.best_effort_sends = 0
        # Native send/delivery statistics (always maintained; snapshotted
        # into the tracer's counters by _flush_stats at Tracer.finish()).
        self.messages_delivered = 0
        self.intraprocess_sends = 0
        self.eager_sends = 0
        self.rendezvous_sends = 0
        #: Quiescence-detector protocol accounting (repro.faults PR):
        #: rounds run and reduction messages charged (see quiescence.py).
        self.qd_rounds = 0
        self.qd_protocol_msgs = 0
        self.stopped = False
        self.stop_wakeup = WakeupSource(env, name="runtime-stop", params=params)
        #: The Projections-style tracer (repro.trace): spans + counters.
        #: None when tracing is off — every instrumentation site across
        #: the stack guards on that, keeping the disabled path free.
        self.tracer: Optional[TimelineRecorder] = (
            TimelineRecorder(env)
            if (config.record_timeline or config.trace)
            else None
        )

        # Fault injection (repro.faults): an explicit plan wins; with
        # none configured the REPRO_FAULTS env switch applies.  A null
        # plan installs nothing — the hardware hooks stay `None` and the
        # trajectory is bench-gate-identical to a build without faults.
        plan = config.fault_plan if config.fault_plan is not None else FaultPlan.from_env()
        self.fault_plan = plan
        self.fault_injector: Optional[FaultInjector] = None
        if plan is not None and not plan.is_null:
            self.fault_injector = FaultInjector(env, plan)
            self.machine.attach_faults(self.fault_injector)

        # Build processes and PEs.  Threads of a node are split evenly
        # between its processes.  Sharded machines leave ``None`` node
        # placeholders; the matching process/PE slots stay ``None`` too,
        # so global ranks keep indexing ``pes`` (remote PEs are reached
        # through :meth:`rank_endpoint`).
        self.processes: List[Optional[ConverseProcess]] = []
        self.pes: List[Optional[PE]] = []
        slice_size = params.threads_per_node // config.processes_per_node
        rank = 0
        for node in self.machine.nodes:
            if node is None:
                self.processes.extend([None] * config.processes_per_node)
                self.pes.extend(
                    [None] * (config.processes_per_node * config.workers_per_process)
                )
                rank += config.processes_per_node * config.workers_per_process
                continue
            for p in range(config.processes_per_node):
                proc = ConverseProcess(self, node, p, thread_base=p * slice_size)
                self.processes.append(proc)
                for w in range(config.workers_per_process):
                    pe = PE(self, proc, rank, w, proc.worker_threads[w])
                    if not proc.comm_contexts:
                        pe.context = proc.worker_contexts[w]
                    proc.pes.append(pe)
                    self.pes.append(pe)
                    rank += 1

        # Reliability: auto-on exactly when faults are injected (an
        # unreliable network needs the ACK/retransmit transport for the
        # runtime's delivery guarantees to hold), overridable for tests.
        reliable = (
            config.reliable
            if config.reliable is not None
            else self.fault_injector is not None
        )
        if reliable:
            policy = (plan or FaultPlan()).retry_policy()
            for proc in self.processes:
                if proc is None:
                    continue
                for ctx in proc.client.contexts:
                    ctx.enable_reliability(policy)

        if self.tracer is not None:
            self._wire_tracer()

    @property
    def recorder(self) -> Optional[TimelineRecorder]:
        """Legacy name for :attr:`tracer` (the old timeline recorder)."""
        return self.tracer

    #: Comm-thread span tracks start here so they never collide with PE
    #: ranks (a BG/Q partition in this reproduction stays well below it).
    COMMTHREAD_TRACK_BASE = 10_000

    def _wire_tracer(self) -> None:
        """Attach the tracer to span-recording components and name tracks.

        Only components that record *spans* (comm threads, and the env
        so user code can reach the tracer) hold a ``tracer`` attribute;
        counter-producing components keep plain integer statistics
        unconditionally and :meth:`_flush_stats` snapshots them at
        ``Tracer.finish()`` — see docs/ARCHITECTURE.md for the hook map.
        """
        tracer = self.tracer
        self.env.tracer = tracer
        ct_track = self.COMMTHREAD_TRACK_BASE
        for proc in self.processes:
            if proc is None:
                continue
            for ct in proc.comm_threads:
                ct.tracer = tracer
                ct.track = ct_track
                tracer.register_track(ct_track, ct.name)
                ct_track += 1
        for pe in self.pes:
            if pe is not None:
                tracer.register_track(pe.rank, f"pe{pe.rank}")
        inj = self.fault_injector
        if inj is not None:
            tracer.register_track(FAULT_TRACK, "faults")
            inj.tracer = tracer
            for proc in self.processes:
                if proc is None:
                    continue
                for ctx in proc.client.contexts:
                    if ctx.reliability is not None:
                        ctx.reliability.tracer = tracer
        tracer.add_finalizer(self._flush_stats)
        # Simulated hardware-performance-counter groups (repro.trace.hpm):
        # per-node L2/MU/wakeup-unit/comm-thread counters, harvested from
        # the same native stats at finish().
        install_hpm(tracer, self)

    def _flush_stats(self) -> None:
        """Snapshot component statistics into the tracer's counters.

        Runs from ``Tracer.finish()``.  Assigns (never adds) so calling
        finish() twice is safe; zero-valued stats are skipped so e.g.
        ``commthread.*`` counters only appear in runs with comm threads.
        """
        tracer = self.tracer
        counters, per_track = tracer.counters, tracer.track_counters

        def put(name: str, value: float) -> None:
            if value:
                counters[name] = value

        def put_tracks(name: str, pairs) -> None:
            d = {t: v for t, v in pairs if v}
            if d:
                counters[name] = sum(d.values())
                per_track[name] = d

        pes = [pe for pe in self.pes if pe is not None]
        put_tracks("converse.msgs_sent", [(pe.rank, pe.msgs_sent) for pe in pes])
        put_tracks("converse.bytes_sent", [(pe.rank, pe.bytes_sent) for pe in pes])
        put_tracks(
            "converse.msgs_executed", [(pe.rank, pe.messages_executed) for pe in pes]
        )
        put_tracks(
            "converse.bytes_received", [(pe.rank, pe.bytes_received) for pe in pes]
        )
        put_tracks("sched.idle_entries", [(pe.rank, pe.idle_entries) for pe in pes])
        put("sched.polls", sum(pe.polls for pe in pes))
        put("converse.msgs_delivered", self.messages_delivered)
        put("converse.intraprocess_sends", self.intraprocess_sends)
        put("converse.eager_sends", self.eager_sends)
        put("converse.rendezvous_sends", self.rendezvous_sends)
        put("converse.best_effort_sends", self.best_effort_sends)
        put("queue.enqueues", sum(pe.queue.enqueues for pe in pes))
        put("queue.dequeues", sum(pe.queue.dequeues for pe in pes))
        nodes = [node for node in self.machine.nodes if node is not None]
        put("l2.atomic_ops", sum(node.l2.op_count for node in nodes))
        put("mu.descriptors", sum(node.mu.descriptors_processed for node in nodes))
        put("mu.packets_injected", sum(node.mu.packets_injected for node in nodes))
        put("mu.packets_received", sum(node.mu.packets_received for node in nodes))
        procs = [proc for proc in self.processes if proc is not None]
        contexts = [ctx for proc in procs for ctx in proc.client.contexts]
        put("pami.msgs_sent", sum(c.messages_sent for c in contexts))
        put("pami.bytes_sent", sum(c.bytes_sent for c in contexts))
        put("pami.msgs_received", sum(c.messages_received for c in contexts))
        put("pami.advances", sum(c.advances for c in contexts))
        put("pami.packets_drained", sum(c.packets_drained for c in contexts))
        put("pami.work_posted", sum(c.work_posted for c in contexts))
        put("pami.completions", sum(c.completions_posted for c in contexts))
        put("pami.rgets", sum(c.rgets for c in contexts))
        put("pami.rputs", sum(c.rputs for c in contexts))
        # Processes may share one allocator; count each exactly once, in
        # process order.
        allocs = _unique_by_identity(proc.alloc for proc in procs)
        put("alloc.mallocs", sum(a.mallocs for a in allocs))
        put("alloc.frees", sum(a.frees for a in allocs))
        put("alloc.pool_hits", sum(getattr(a, "pool_hits", 0) for a in allocs))
        put("alloc.pool_misses", sum(getattr(a, "pool_misses", 0) for a in allocs))
        put("alloc.spills", sum(getattr(a, "spills", 0) for a in allocs))
        cts = [ct for proc in procs for ct in proc.comm_threads]
        put_tracks("commthread.items", [(ct.track, ct.items_processed) for ct in cts])
        put_tracks("commthread.wakeups", [(ct.track, ct.wakeup_count) for ct in cts])
        inj = self.fault_injector
        if inj is not None:
            for name, value in sorted(inj.stats.as_dict().items()):
                put(f"faults.{name}", value)
        rels = [c.reliability for c in contexts if c.reliability is not None]
        if rels:
            put("rel.retries", sum(r.retries for r in rels))
            put("rel.gave_up", sum(r.gave_up for r in rels))
            put("rel.dup_suppressed", sum(r.dup_suppressed for r in rels))
            put("rel.reordered_accepted", sum(r.reordered_accepted for r in rels))
            put("rel.acks_sent", sum(r.acks_sent for r in rels))
            put("rel.corrupt_dropped", sum(r.corrupt_dropped for r in rels))
            put("rel.stale_dropped", sum(r.stale_dropped for r in rels))
            put("rel.holes_skipped", sum(r.holes_skipped for r in rels))
            put("rel.timers_cancelled", sum(r.timers_cancelled for r in rels))
            put("rel.in_flight_at_finish", sum(r.in_flight for r in rels))
        put("qd.rounds", self.qd_rounds)
        put("qd.protocol_msgs", self.qd_protocol_msgs)

    # -- PE -> endpoint addressing ---------------------------------------------
    def rank_endpoint(self, rank: int) -> Endpoint:
        """Inbound PAMI endpoint for a global PE rank.

        For locally built PEs this is the object-derived endpoint
        (``process.inbound_endpoint``).  For ``None`` placeholders
        (remote shards) the endpoint is computed from the deterministic
        construction order: each process allocates its contexts — and
        therefore its node's reception FIFOs — in process order, one
        FIFO per context, so the FIFO id is the context's ordinal
        within the node.  ``tests/sim/test_sharded.py`` asserts the
        formula matches the object-derived endpoints exactly.
        """
        pe = self.pes[rank]
        if pe is not None:
            return pe.process.inbound_endpoint(pe.local_index)
        cfg = self.config
        node_id, r = divmod(rank, cfg.pes_per_node)
        proc_in_node, local_index = divmod(r, cfg.workers_per_process)
        if cfg.comm_threads_per_process > 0:
            contexts_per_process = cfg.comm_threads_per_process
            ctx_index = local_index % cfg.comm_threads_per_process
        else:
            contexts_per_process = cfg.workers_per_process
            ctx_index = local_index
        return (node_id, proc_in_node * contexts_per_process + ctx_index)

    # -- handler registry ------------------------------------------------------
    def register_handler(
        self, fn: Callable, category: str = "sched", qos: int = QOS_RELIABLE
    ) -> int:
        """Register a Converse handler ``fn(pe, msg)``; returns its id.

        ``category`` labels the handler's timeline segments (Figs. 3/9/10
        colours): integrate / nonbonded / pme / comm / sched ...

        ``qos`` sets the *default* delivery semantics for sends that
        target this handler (:mod:`repro.faults.qos`); a per-send
        ``qos=`` argument to :meth:`send` overrides it.
        """
        self.handlers.append(fn)
        hid = len(self.handlers) - 1
        self.handler_categories[hid] = category
        self.handler_qos[hid] = qos
        return hid

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Start every (locally built) PE's scheduler loop."""
        for pe in self.pes:
            if pe is not None:
                pe.start()

    def stop(self) -> None:
        """Stop all schedulers and communication threads."""
        self.stopped = True
        self.stop_wakeup.signal()
        for proc in self.processes:
            if proc is None:
                continue
            for ct in proc.comm_threads:
                ct.stop()
        # Wake any PE parked in its idle loop.
        for pe in self.pes:
            if pe is not None:
                pe.queue.wakeup.signal()

    def run_until(self, event) -> Any:
        """Convenience: start, run to the event, stop."""
        self.start()
        value = self.env.run(until=event)
        self.stop()
        return value

    # -- message send path --------------------------------------------------
    def send(
        self,
        src_pe: PE,
        dst_rank: int,
        handler_id: int,
        nbytes: int,
        payload: Any,
        priority: int = 0,
        qos: Optional[int] = None,
        fresh_key: Any = None,
    ):
        """CmiSyncSend (generator); runs on the sending PE's thread.

        ``qos=None`` (the default) inherits the destination handler's
        registered delivery mode; pass an explicit
        :mod:`repro.faults.qos` constant to override per send.  FRESH
        sends supersede per ``fresh_key`` flow — defaulting to
        ``(handler_id, src_rank, dst_rank)`` so distinct handler/rank
        pairs never alias; applications carrying several logical flows
        over one handler (e.g. per-chare halos) pass their own key.
        """
        env = self.env
        p = self.params
        if not 0 <= dst_rank < len(self.pes):
            raise ValueError(f"bad destination rank {dst_rank}")
        if not 0 <= handler_id < len(self.handlers):
            raise ValueError(f"unregistered handler {handler_id}")
        thread = src_pe.thread
        proc = src_pe.process
        dst_pe = self.pes[dst_rank]
        if qos is None:
            qos = self.handler_qos.get(handler_id, QOS_RELIABLE)
        if nbytes > p.rendezvous_threshold:
            # Rendezvous is a three-way control protocol (RTS/rget/ACK);
            # losing any leg leaks a buffer and wedges the sender, so
            # large messages always ride the reliable transport.
            qos = QOS_RELIABLE
        if qos == QOS_RELIABLE:
            self.messages_sent += 1
        else:
            self.best_effort_sends += 1
            if qos == QOS_BEST_EFFORT_FRESH and fresh_key is None:
                fresh_key = (handler_id, src_pe.rank, dst_rank)
        src_pe.msgs_sent += 1
        src_pe.bytes_sent += nbytes
        rec = self.tracer
        msg_id = None
        if rec is not None:
            rec.begin(src_pe.rank, "comm")
            # Provenance stamp: monotonic per-source id, recorded as the
            # send edge of the causal DAG.  Host-side only (the id rides
            # in tuples/slots), so stamping is cycle-neutral — and it
            # only happens at all on traced runs.  The append is inlined
            # (schema of Tracer.msg_send) — this is the per-message hot
            # path, and a method call per event is what the <5% tracer
            # overhead budget can't afford.
            if rec.enabled:
                src_pe.msg_seq += 1
                msg_id = (src_pe.rank, src_pe.msg_seq)
                rec.provenance.append(
                    ("send", msg_id, src_pe.rank, dst_rank, nbytes, env.now)
                )

        if dst_pe is not None and dst_pe.process is proc:
            # Intra-process: pointer exchange into the peer's L2 queue.
            self.intraprocess_sends += 1
            yield from thread.compute(p.intranode_deliver_instr)
            msg = ConverseMessage(
                handler_id, nbytes, payload, src_pe.rank, dst_rank,
                sent_at=env.now, priority=priority, msg_id=msg_id,
            )
            if dst_pe is src_pe:
                src_pe.local_q.append(msg)
            else:
                yield from dst_pe.enqueue_from(thread, msg)
            if rec is not None:
                if msg_id is not None:
                    rec.provenance.append(("recv", msg_id, dst_rank, env.now))
                rec.begin(src_pe.rank, "sched")
            return

        # Network path: allocate + pack the outgoing buffer.
        buf = yield from proc.alloc.malloc(thread, nbytes)
        yield from thread.compute(nbytes / p.memcpy_bytes_per_instr)
        yield from thread.compute(
            p.converse_send_instr + (p.smp_overhead_instr if proc.is_smp else 0.0)
        )
        endpoint = self.rank_endpoint(dst_rank)
        data = (dst_rank, handler_id, nbytes, payload, env.now, priority, msg_id)

        if nbytes <= p.rendezvous_threshold:
            self.eager_sends += 1
            if proc.comm_threads:
                ctx = proc.next_send_context()

                def send_work(c: PamiContext, t: HWThread, _data=data, _n=nbytes,
                              _qos=qos, _fk=fresh_key):
                    if _n <= p.packet_payload_max:
                        yield from c.send_immediate(
                            t, endpoint, DISPATCH_EAGER, _n, _data, _qos, _fk
                        )
                    else:
                        yield from c.send(
                            t, endpoint, DISPATCH_EAGER, _n, _data, _qos, _fk
                        )

                yield from ctx.post_work(thread, send_work)
            else:
                ctx = src_pe.context
                if nbytes <= p.packet_payload_max:
                    yield from ctx.send_immediate(
                        thread, endpoint, DISPATCH_EAGER, nbytes, data, qos, fresh_key
                    )
                else:
                    yield from ctx.send(
                        thread, endpoint, DISPATCH_EAGER, nbytes, data, qos, fresh_key
                    )
            # Eager: the machine layer owns the payload now.
            yield from proc.alloc.free(thread, buf)
        else:
            self.rendezvous_sends += 1
            token = proc.new_token()
            proc.pending_sends[token] = buf
            ack_ep = proc.inbound_endpoint(src_pe.local_index)
            rts = (
                dst_rank,
                handler_id,
                nbytes,
                payload,
                proc.node.node_id,
                token,
                ack_ep,
                env.now,
                msg_id,
            )
            yield from thread.compute(p.rendezvous_extra_instr / 2)
            if proc.comm_threads:
                ctx = proc.next_send_context()

                def rts_work(c: PamiContext, t: HWThread, _rts=rts):
                    yield from c.send_immediate(t, endpoint, DISPATCH_RTS, 64, _rts)

                yield from ctx.post_work(thread, rts_work)
            else:
                yield from src_pe.context.send_immediate(
                    thread, endpoint, DISPATCH_RTS, 64, rts
                )
        if rec is not None:
            rec.begin(src_pe.rank, "sched")

    # -- receive-side dispatches (run on whichever thread advances) -----------
    def _proc_of_context(self, ctx: PamiContext) -> ConverseProcess:
        for proc in self.processes:
            if proc is not None and ctx in proc.contexts:
                return proc
        raise RuntimeError("context not owned by any process")

    def _deliver_to_pe(self, thread: HWThread, msg: ConverseMessage):
        pe = self.pes[msg.dst_rank]
        if pe.thread is thread:
            pe.local_q.append(msg)
        else:
            yield from pe.enqueue_from(thread, msg)
        rec = self.tracer
        if rec is not None and msg.msg_id is not None and rec.enabled:
            # Receive edge: arrival in the destination PE's queue.  A
            # retransmitted message can arrive twice; analysis keeps the
            # first recv event per id.  Inlined append (schema of
            # Tracer.msg_recv) — per-message hot path.
            rec.provenance.append(
                ("recv", msg.msg_id, msg.dst_rank, self.env.now)
            )

    def _eager_dispatch(self, ctx: PamiContext, thread: HWThread, payload: AMPayload):
        p = self.params
        dst_rank, handler_id, nbytes, user_payload, sent_at, priority, msg_id = payload.data
        proc = self._proc_of_context(ctx)
        self.messages_delivered += 1
        yield from thread.compute(p.converse_recv_instr)
        buf = yield from proc.alloc.malloc(thread, nbytes)
        yield from thread.compute(nbytes / p.memcpy_bytes_per_instr)
        msg = ConverseMessage(
            handler_id, nbytes, user_payload, -1, dst_rank, buffer=buf,
            sent_at=sent_at, priority=priority, msg_id=msg_id,
        )
        yield from self._deliver_to_pe(thread, msg)

    def _rts_dispatch(self, ctx: PamiContext, thread: HWThread, payload: AMPayload):
        p = self.params
        (dst_rank, handler_id, nbytes, user_payload, src_node, token, ack_ep, sent_at, msg_id) = payload.data
        proc = self._proc_of_context(ctx)
        self.messages_delivered += 1
        yield from thread.compute(p.rendezvous_extra_instr / 2)
        desc = yield from ctx.rget(thread, src_node, nbytes)

        def completion(c: PamiContext, t: HWThread):
            yield from t.compute(p.converse_recv_instr)
            buf = yield from proc.alloc.malloc(t, nbytes)
            # RDMA wrote straight into memory: no unpack copy.
            msg = ConverseMessage(
                handler_id, nbytes, user_payload, -1, dst_rank, buffer=buf,
                sent_at=sent_at, msg_id=msg_id,
            )
            yield from self._deliver_to_pe(t, msg)
            yield from c.send_immediate(t, ack_ep, DISPATCH_ACK, 16, token)

        def watch():
            yield desc.delivered
            ctx.post_completion(completion)

        self.env.process(watch(), name="rts-rget-watch")

    def _ack_dispatch(self, ctx: PamiContext, thread: HWThread, payload: AMPayload):
        proc = self._proc_of_context(ctx)
        token = payload.data
        buf = proc.pending_sends.pop(token, None)
        if buf is None:
            raise RuntimeError(f"ACK for unknown rendezvous token {token}")
        yield from proc.alloc.free(thread, buf)
