"""Converse processing elements and the message-driven scheduler loop.

A PE is one worker thread running the Converse scheduler: dequeue a
message, invoke its handler, repeat; when both queues are empty, enter
the idle poll loop (§III-D).  The optimized idle poll spins on the L2
atomic producer counter of the PE's message queue — each poll is an L2
load that stalls ~60 cycles, so the idle thread barely occupies the
core's issue slots and active sibling threads keep nearly full
throughput.  The naive alternative (spin on an L1-cached flag) detects
work a little sooner but burns an issue slot every cycle.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, TYPE_CHECKING

from ..bgq.node import HWThread
from ..bgq.params import BGQParams
from ..queues import L2AtomicQueue, MutexQueue
from ..sim import Environment, TimelineRecorder

if TYPE_CHECKING:  # pragma: no cover
    from .machine import ConverseProcess, ConverseRuntime
from .messages import ConverseMessage

__all__ = ["PE"]


class PE:
    """A Charm++/Converse processing element bound to a hardware thread."""

    def __init__(
        self,
        runtime: "ConverseRuntime",
        process: "ConverseProcess",
        rank: int,
        local_index: int,
        thread: HWThread,
    ) -> None:
        self.runtime = runtime
        self.process = process
        self.rank = rank
        self.local_index = local_index
        self.thread = thread
        self.env: Environment = runtime.env
        self.params: BGQParams = runtime.params
        cfg = runtime.config
        if cfg.queue_kind == "l2":
            self.queue = L2AtomicQueue(
                self.env,
                thread.node.l2,
                size=cfg.pe_queue_size,
                name=f"pe{rank}-queue",
                params=self.params,
            )
        else:
            self.queue = MutexQueue(self.env, name=f"pe{rank}-queue", params=self.params)
        #: Messages the PE sends to itself (no atomics needed).
        self.local_q: Deque[ConverseMessage] = deque()
        #: Prioritized scheduler queue: arrivals drain here and execute
        #: lowest-priority-value first (FIFO within a priority).
        self._heap: List = []
        self._seq = itertools.count()
        #: PAMI context this PE advances itself (modes without comm threads).
        self.context = None
        # Native statistics: always maintained (an int add each; far
        # cheaper than tracer calls on the scheduler hot path) and
        # snapshotted into the tracer's counters at Tracer.finish().
        self.messages_executed = 0
        self.idle_entries = 0
        self.polls = 0
        self.msgs_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Monotonic per-PE send sequence for provenance ids; only
        #: advanced on traced runs (the machine layer stamps
        #: ``(rank, msg_seq)`` on each outgoing message).
        self.msg_seq = 0
        self._proc = None  # scheduler Process, set at start

    # -- sending (called from inside handlers running on this PE) -----------
    def send(
        self,
        dst_rank: int,
        handler_id: int,
        nbytes: int,
        payload: Any = None,
        priority: int = 0,
        qos: Optional[int] = None,
        fresh_key: Any = None,
    ):
        """CmiSyncSend: deliver a message to another PE (generator).

        ``qos``/``fresh_key`` select delivery semantics per send
        (:mod:`repro.faults.qos`); None inherits the handler's default.
        """
        yield from self.runtime.send(
            self, dst_rank, handler_id, nbytes, payload, priority=priority,
            qos=qos, fresh_key=fresh_key,
        )

    # -- scheduler -------------------------------------------------------------
    def start(self) -> None:
        self._proc = self.env.process(self._scheduler(), name=f"pe{self.rank}")

    def enqueue_from(self, thread: HWThread, msg: ConverseMessage):
        """Producer-side enqueue into this PE's queue (generator)."""
        yield from self.queue.enqueue(thread, msg)

    def _poll_once(self):
        """One scheduler poll: returns a message or None (generator).

        Arrivals (network/peer queue + self-sends) drain into the PE's
        prioritized scheduler queue; the best message runs next.
        """
        self.polls += 1
        heap = self._heap
        local_q = self.local_q
        while local_q:
            msg = local_q.popleft()
            heapq.heappush(heap, (msg.priority, next(self._seq), msg))
        # has_ready() keeps the dequeue generator off the poll hot path
        # when the lockless queue provably has nothing: an empty L2
        # dequeue simulates zero events, so skipping it is trajectory
        # neutral (a MutexQueue always reports ready — it pays the mutex
        # even when empty).
        queue = self.queue
        while queue.has_ready():
            msg = yield from queue.dequeue(self.thread)
            if msg is None:
                break
            heapq.heappush(heap, (msg.priority, next(self._seq), msg))
        if heap:
            return heapq.heappop(heap)[2]
        return None

    def _execute(self, msg: ConverseMessage):
        p = self.params
        rec: Optional[TimelineRecorder] = self.runtime.tracer
        handler = self.runtime.handlers[msg.handler_id]
        t0 = 0.0
        if rec is not None:
            rec.begin(self.rank, self.runtime.handler_categories.get(msg.handler_id, "sched"))
            t0 = self.env.now
        result = handler(self, msg)
        if result is not None and hasattr(result, "__next__"):
            yield from result
        self.messages_executed += 1
        self.bytes_received += msg.nbytes
        # Receive-side buffer free (the Fig. 6/Fig. 8 contention source:
        # the buffer was allocated by whichever thread ran the dispatch).
        if msg.buffer is not None:
            yield from self.process.alloc.free(self.thread, msg.buffer)
            msg.buffer = None
        if rec is not None:
            if msg.msg_id is not None and rec.enabled:
                # Inlined append (schema of Tracer.msg_exec) — one per
                # executed message, on the scheduler hot path.
                rec.provenance.append(
                    ("exec", msg.msg_id, self.rank, t0, self.env.now)
                )
            rec.begin(self.rank, "sched")

    def _scheduler(self):
        env = self.env
        p = self.params
        runtime = self.runtime
        rec = runtime.tracer
        advance_ctx = self.context is not None
        while not runtime.stopped:
            msg = yield from self._poll_once()
            if msg is not None:
                yield from self._execute(msg)
                continue
            progressed = 0
            if advance_ctx:
                if rec is not None:
                    rec.begin(self.rank, "comm")
                progressed = yield from self.context.advance(self.thread)
            if progressed:
                continue
            # Nothing to do: idle poll until the queue (or our context's
            # reception FIFO) shows activity.
            yield from self._idle_poll(advance_ctx)
        if rec is not None:
            rec.end(self.rank)

    def _idle_poll(self, advance_ctx: bool):
        env = self.env
        p = self.params
        cfg = self.runtime.config
        self.idle_entries += 1
        rec = self.runtime.tracer
        if rec is not None:
            rec.begin(self.rank, "idle")
        if cfg.idle_poll == "l2":
            weight, detect = p.idle_poll_l2_weight, p.idle_poll_l2_detect
        else:
            weight, detect = p.idle_poll_naive_weight, p.idle_poll_naive_detect
        sources = [self.queue.wakeup]
        if advance_ctx:
            sources.append(self.context.rfifo.wakeup)
            sources.append(self.context.work.wakeup)
        sources.append(self.runtime.stop_wakeup)
        member = self.thread.core.register(weight)
        armed = [(s, s.arm(latency=detect)) for s in sources]
        try:
            yield env.any_of([ev for _, ev in armed])
        finally:
            self.thread.core.unregister(member)
            for s, ev in armed:
                s.disarm(ev)
        if rec is not None:
            rec.begin(self.rank, "sched")
