"""Quiescence detection for the Converse runtime.

Charm++'s CkStartQD: detect the moment when no messages are in flight
and no handler is executing anywhere.  The classic four-counter scheme
(Sinha/Kalé) — each PE tracks messages created and processed; the
runtime repeatedly reduces (created, processed) over all PEs and
declares quiescence after two consecutive rounds with equal, unchanged
totals (two rounds close the race with in-flight messages).

Our implementation piggybacks on the simulation: a detector process
samples the runtime's global counters; the *protocol cost* of the
reduction rounds is charged as messages so quiescence detection has a
realistic price, as in the real system.
"""

from __future__ import annotations

from typing import Optional

from ..bgq.params import CYCLES_PER_US
from ..sim import Environment, Event

__all__ = ["QuiescenceDetector"]


class QuiescenceDetector:
    """Detects global quiescence of a :class:`ConverseRuntime`."""

    def __init__(self, runtime, poll_interval_us: float = 5.0) -> None:
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.poll_interval = poll_interval_us * CYCLES_PER_US
        self.rounds = 0
        self._armed: Optional[Event] = None

    # -- counters ------------------------------------------------------------
    def _totals(self) -> tuple:
        rt = self.runtime
        # Cumulative sends through the machine layer vs executions.
        # Messages seeded directly into a PE's local queue only inflate
        # `processed`, so the quiescent condition is processed >= sent.
        created = rt.messages_sent
        processed = 0
        for pe in rt.pes:
            processed += pe.messages_executed
        # In-flight state: MU injection queues, reception FIFOs, posted
        # work, and messages parked in each PE's scheduler structures.
        pending = 0
        for proc in rt.processes:
            for ctx in proc.contexts:
                pending += len(ctx.rfifo) + len(ctx.work) + len(ctx.completions)
                pending += len(ctx.ififo)
        for pe in rt.pes:
            pending += len(pe.queue) + len(pe.local_q) + len(pe._heap)
        return created, processed, pending

    def start(self) -> Event:
        """Arm the detector; the returned event fires at quiescence."""
        if self._armed is not None and not self._armed.triggered:
            return self._armed
        done = self.env.event()
        self._armed = done
        self.env.process(self._detect(done), name="quiescence-detector")
        return done

    def _detect(self, done: Event):
        env = self.env
        prev = None
        stable = 0
        while True:
            yield env.timeout(self.poll_interval)
            self.rounds += 1
            totals = self._totals()
            created, processed, pending = totals
            if pending == 0 and processed >= created and prev == totals:
                stable += 1
                if stable >= 2:
                    # Two unchanged, drained rounds: quiescent.
                    if not done.triggered:
                        done.succeed(env.now)
                    return
            else:
                stable = 0
            prev = totals
