"""Quiescence detection for the Converse runtime.

Charm++'s CkStartQD: detect the moment when no messages are in flight
and no handler is executing anywhere.  The classic four-counter scheme
(Sinha/Kalé) — each PE tracks messages created and processed; the
runtime repeatedly reduces (created, processed) over all PEs and
declares quiescence after two consecutive rounds with equal, unchanged
totals (two rounds close the race with in-flight messages).

Our implementation piggybacks on the simulation: a detector process
samples the runtime's global counters, and each sampling round is
*charged* — in simulated time and in message counts — as the
spanning-tree reduction + broadcast it stands for: ``2 * (P - 1)``
protocol messages per round and a latency of two tree traversals
(send + wire + receive per level, ``ceil(log2 P)`` levels).  The
charges are mirrored into ``runtime.qd_rounds`` /
``runtime.qd_protocol_msgs`` and surface as the ``qd.*`` trace
counters.  A single-PE runtime needs no reduction, so its rounds stay
free — detection on an idle 1-PE system remains effectively immediate.

The in-flight test also counts packets held by the reliability layer
(:mod:`repro.faults`): a message awaiting ACK/retransmit is invisible
to every FIFO/queue but is *not* yet processed, and ignoring it lets
the detector declare quiescence while a retransmit is still pending —
the message race this PR's regression test pins down.

QoS accounting (see ``_totals``): best-effort and FRESH sends never
count as created or in-flight — dropping one must not block
quiescence — and transport-internal ACK traffic is excluded from every
counter; given-up reliable sends are credited back so a partitioned
network still quiesces once the transport abandons them.
"""

from __future__ import annotations

import math
from typing import Optional

from ..bgq.params import CYCLES_PER_US
from ..sim import Environment, Event

__all__ = ["QuiescenceDetector"]


class QuiescenceDetector:
    """Detects global quiescence of a :class:`ConverseRuntime`."""

    def __init__(self, runtime, poll_interval_us: float = 5.0) -> None:
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.poll_interval = poll_interval_us * CYCLES_PER_US
        self.rounds = 0
        self.protocol_msgs = 0
        self._armed: Optional[Event] = None
        # Protocol cost of one reduction+broadcast round over P PEs:
        # every non-root contributes up the spanning tree and receives
        # the broadcast back down it.
        p = runtime.params
        npes = len(runtime.pes)
        self.msgs_per_round = 2 * (npes - 1) if npes > 1 else 0
        depth = math.ceil(math.log2(npes)) if npes > 1 else 0
        self.round_cost = 2.0 * depth * (
            p.converse_send_instr + p.nic_latency + p.converse_recv_instr
        )

    # -- counters ------------------------------------------------------------
    def _totals(self) -> tuple:
        rt = self.runtime
        # Cumulative sends through the machine layer vs executions.
        # Messages seeded directly into a PE's local queue only inflate
        # `processed`, so the quiescent condition is processed >= sent.
        #
        # Accounting rules (the QoS contract, docs/ARCHITECTURE.md):
        # * `created` counts reliable machine-layer sends only.  Best-
        #   effort/FRESH sends (rt.best_effort_sends) may legally never
        #   execute anywhere — charging them would wedge the detector
        #   the first time one is dropped.  A *delivered* best-effort
        #   message inflates `processed` instead, which the >= condition
        #   absorbs.
        # * Transport ACKs are excluded on every axis: posted outside
        #   the machine layer (not in messages_sent), consumed by the
        #   reliability gate before dispatch (not in messages_executed),
        #   unstamped (never in rel.pending).  Their only footprint is
        #   the FIFO/queue occupancy below while one is physically in
        #   flight — which is exactly the non-quiescent window.
        created = rt.messages_sent
        processed = 0
        for pe in rt.pes:
            processed += pe.messages_executed
        # In-flight state: MU injection queues, reception FIFOs, posted
        # work, messages parked in each PE's scheduler structures, and
        # stamped sends the reliability transport has not yet seen ACKed
        # (a retransmit-pending message is in flight even when no FIFO
        # holds a packet for it).
        pending = 0
        for proc in rt.processes:
            for ctx in proc.contexts:
                pending += len(ctx.rfifo) + len(ctx.work) + len(ctx.completions)
                pending += len(ctx.ififo)
            for ctx in proc.client.contexts:
                rel = ctx.reliability
                if rel is not None:
                    pending += rel.in_flight
                    # A given-up send was `created` but will never be
                    # executed; credit it as processed or a partitioned
                    # network never satisfies processed >= created.
                    # (Give-ups on PAMI-level traffic that never touched
                    # messages_sent only widen the >= margin.)
                    processed += rel.gave_up
        for pe in rt.pes:
            pending += len(pe.queue) + len(pe.local_q) + len(pe._heap)
        return created, processed, pending

    def start(self) -> Event:
        """Arm the detector; the returned event fires at quiescence."""
        if self._armed is not None and not self._armed.triggered:
            return self._armed
        done = self.env.event()
        self._armed = done
        self.env.process(self._detect(done), name="quiescence-detector")
        return done

    def _detect(self, done: Event):
        env = self.env
        rt = self.runtime
        prev = None
        stable = 0
        while True:
            # One detection round = poll interval + the latency of the
            # counter reduction/broadcast it models; the tree messages
            # are charged to the runtime's protocol ledger.
            yield env.timeout(self.poll_interval + self.round_cost)
            self.rounds += 1
            self.protocol_msgs += self.msgs_per_round
            rt.qd_rounds += 1
            rt.qd_protocol_msgs += self.msgs_per_round
            totals = self._totals()
            created, processed, pending = totals
            if pending == 0 and processed >= created and prev == totals:
                stable += 1
                if stable >= 2:
                    # Two unchanged, drained rounds: quiescent.
                    if not done.triggered:
                        done.succeed(env.now)
                    return
            else:
                stable = 0
            prev = totals
