"""CmiAlloc: scalable message-buffer allocation (§III-B).

Every Charm++ message send allocates a buffer.  Routing those
allocations to the GNU arena allocator causes mutex contention on
``free`` — a thread freeing a buffer must lock the arena the buffer
came from, and threads that receive messages from the same source all
free to the *same* arena (measured in Fig. 6).

The paper's fix, implemented here: each thread keeps a pool of
temporary buffers in its own **L2 atomic queue**.  ``free`` does a
lockless enqueue to the queue of the thread that created the buffer;
``malloc`` does a lockless dequeue from the caller's own pool.  Past a
pool-size threshold, buffers spill back to the heap.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..bgq.memory import ArenaAllocator, Buffer
from ..bgq.node import HWThread, Node
from ..bgq.params import BGQParams, DEFAULT_PARAMS
from ..queues import L2AtomicQueue
from ..sim import Environment

__all__ = ["PoolAllocator", "GnuAllocator", "make_allocator"]


class GnuAllocator:
    """Thin adapter: CmiAlloc backed directly by the arena allocator."""

    name = "gnu"

    def __init__(self, node: Node, params: BGQParams = DEFAULT_PARAMS) -> None:
        self.node = node
        self.params = params
        self.arena = node.arena_allocator
        # Native statistics, snapshotted into the tracer's alloc.*
        # counters at the end of a traced run.
        self.mallocs = 0
        self.frees = 0

    def malloc(self, thread: HWThread, size: int):
        self.mallocs += 1
        buf = yield from self.arena.malloc(thread, size)
        buf.owner_tid = thread.tid
        return buf

    def free(self, thread: HWThread, buffer: Buffer):
        self.frees += 1
        yield from self.arena.free(thread, buffer)


class PoolAllocator:
    """Per-thread L2-atomic buffer pools over the arena allocator.

    * ``malloc``: lockless dequeue from the calling thread's own pool;
      on a miss, fall through to the arena allocator.
    * ``free``: lockless enqueue to the pool of the buffer's *creator*
      thread (so the creator's future mallocs reuse it); past
      ``pool_threshold`` buffers, spill to the heap instead.
    """

    name = "pool"

    def __init__(
        self,
        node: Node,
        params: BGQParams = DEFAULT_PARAMS,
        pool_threshold: int = 256,
    ) -> None:
        self.node = node
        self.params = params
        self.pool_threshold = pool_threshold
        self.arena = node.arena_allocator
        self._pools: Dict[int, L2AtomicQueue] = {}
        # Native statistics, snapshotted into the tracer's alloc.*
        # counters at the end of a traced run.
        self.mallocs = 0
        self.frees = 0
        self.pool_hits = 0
        self.pool_misses = 0
        self.spills = 0

    def _pool(self, tid: int) -> L2AtomicQueue:
        pool = self._pools.get(tid)
        if pool is None:
            pool = L2AtomicQueue(
                self.node.env,
                self.node.l2,
                size=self.pool_threshold,
                name=f"pool-n{self.node.node_id}t{tid}",
                params=self.params,
            )
            self._pools[tid] = pool
        return pool

    def malloc(self, thread: HWThread, size: int):
        p = self.params
        self.mallocs += 1
        pool = self._pool(thread.tid)
        yield from thread.compute(p.pool_alloc_instr)
        buf = yield from pool.dequeue(thread)
        if buf is not None:
            self.pool_hits += 1
            buf.size = size
            return buf
        self.pool_misses += 1
        buf = yield from self.arena.malloc(thread, size)
        buf.owner_tid = thread.tid
        buf.origin = "gnu"
        return buf

    def free(self, thread: HWThread, buffer: Buffer):
        p = self.params
        self.frees += 1
        pool = self._pool(buffer.owner_tid if buffer.owner_tid >= 0 else thread.tid)
        yield from thread.compute(p.pool_alloc_instr)
        if len(pool) < self.pool_threshold:
            # Lockless enqueue to the creator's pool — never touches the
            # arena mutex, whoever we are.
            yield from pool.enqueue(thread, buffer)
        else:
            self.spills += 1
            yield from self.arena.free(thread, buffer)


def make_allocator(node: Node, kind: str, params: BGQParams = DEFAULT_PARAMS):
    """Build a CmiAlloc backend: ``"pool"`` (optimized) or ``"gnu"``."""
    if kind == "pool":
        return PoolAllocator(node, params)
    if kind == "gnu":
        return GnuAllocator(node, params)
    raise ValueError(f"unknown allocator kind {kind!r}")
