"""Converse message envelope."""

from __future__ import annotations

from typing import Any, Optional

from ..bgq.memory import Buffer

__all__ = ["ConverseMessage"]


class ConverseMessage:
    """One Converse-level message.

    Intra-process delivery exchanges this object by pointer; network
    delivery recreates it at the receiver from the active-message
    payload (the receive-side buffer allocation the paper discusses in
    §III-B happens there).
    """

    __slots__ = (
        "handler_id",
        "nbytes",
        "payload",
        "src_rank",
        "dst_rank",
        "buffer",
        "sent_at",
        "priority",
        "msg_id",
    )

    def __init__(
        self,
        handler_id: int,
        nbytes: int,
        payload: Any,
        src_rank: int,
        dst_rank: int,
        buffer: Optional[Buffer] = None,
        sent_at: float = 0.0,
        priority: int = 0,
        msg_id: Optional[tuple] = None,
    ) -> None:
        self.handler_id = handler_id
        self.nbytes = nbytes
        self.payload = payload
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.buffer = buffer
        self.sent_at = sent_at
        #: Charm++-style priority: smaller values run first; equal
        #: priorities keep arrival order.
        self.priority = priority
        #: Causal provenance id ``(src_pe, seq)``, stamped by the machine
        #: layer at send time *only when tracing* (None otherwise — the
        #: id is host-side data and never affects simulated time).
        self.msg_id = msg_id

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ConverseMessage h={self.handler_id} {self.nbytes}B "
            f"{self.src_rank}->{self.dst_rank}>"
        )
