"""CmiDirectManytomany: Charm++'s burst interface (§III-E).

A persistent handle is set up once with every message of a
neighbourhood collective (destination PEs, sizes, payload slots);
during the computation the application just calls ``start()`` and the
machine layer injects the whole burst through the communication
threads at a small amortized per-message cost — no per-message Charm++
envelope, scheduler trip, or allocation.

Delivery: arrived burst messages bypass the Converse scheduler queue
and land directly in the registered receive slots; when all expected
messages have arrived the completion callback is delivered to the
designated PE as a regular (single) Converse message.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.qos import QOS_RELIABLE
from ..pami.manytomany import ManyToManyHandle
from ..sim import Event
from .machine import ConverseRuntime
from .scheduler import PE

__all__ = ["CmiDirectHandle", "CmiDirectManytomany"]


class CmiDirectHandle:
    """One registered many-to-many pattern, Charm++-level view."""

    def __init__(
        self,
        runtime: ConverseRuntime,
        tag: int,
        pe: PE,
        sends: Sequence[Tuple[int, int, Any]],
        expected_recvs: int,
        on_message: Optional[Callable[[int, Any], None]] = None,
        completion_handler: Optional[int] = None,
        qos: int = QOS_RELIABLE,
        deadline_cycles: Optional[float] = None,
    ) -> None:
        self.runtime = runtime
        self.tag = tag
        self.pe = pe
        #: Burst delivery semantics (repro.faults.qos) + best-effort
        #: completion deadline; see ManyToManyHandle.
        self.qos = qos
        self.deadline_cycles = deadline_cycles
        #: [(dst_pe_rank, nbytes, data)] or [(dst_pe_rank, nbytes, data,
        #: recv_tag)] — recv_tag addresses a different handle at the
        #: destination process (defaults to this handle's tag).
        self.sends = list(sends)
        self.expected_recvs = expected_recvs
        self.on_message = on_message
        self.completion_handler = completion_handler
        proc = pe.process
        endpoint_sends = []
        for entry in self.sends:
            if len(entry) == 3:
                dst_rank, nbytes, data = entry
                recv_tag = tag
            else:
                dst_rank, nbytes, data, recv_tag = entry
            # rank_endpoint resolves remote (None-placeholder) PEs on
            # sharded runs via the deterministic construction formula.
            ep = runtime.rank_endpoint(dst_rank)
            endpoint_sends.append((ep, nbytes, (dst_rank, data), recv_tag))
        self._m2m: ManyToManyHandle = proc.m2m.register(
            tag, endpoint_sends, expected_recvs,
            qos=qos, deadline_cycles=deadline_cycles,
        )
        self._m2m.on_message = self._arrived
        self._arm_completion_watcher()

    # -- receive side ---------------------------------------------------------
    def _arrived(self, src_endpoint, data) -> None:
        dst_rank, user_data = data
        if self.on_message is not None:
            self.on_message(src_endpoint[0], user_data)

    @property
    def recv_done(self) -> Event:
        return self._m2m.recv_done

    @property
    def send_done(self) -> Event:
        return self._m2m.send_done

    @property
    def shortfall(self) -> int:
        """Expected-but-missing receives across deadline-completed
        iterations (best-effort handles only; 0 under reliable qos)."""
        return self._m2m.shortfall

    def reset(self) -> None:
        """Re-arm for the next iteration."""
        self._m2m.reset()
        self._arm_completion_watcher()

    def _arm_completion_watcher(self) -> None:
        """Deliver one Converse message to the owning PE when all
        expected receives of this iteration have arrived."""
        if self.completion_handler is None or self.expected_recvs == 0:
            return
        recv_done = self._m2m.recv_done
        runtime = self.runtime
        pe = self.pe
        hid = self.completion_handler

        def watch():
            yield recv_done
            # Deliver the completion through the PE's own queue so it
            # executes in scheduler context, charged to a real thread.
            ctx = pe.process.contexts[0]

            def completion(c, t):
                from .messages import ConverseMessage

                rec = runtime.tracer
                msg_id = None
                if rec is not None:
                    # Provenance: the m2m burst itself is PAMI-level
                    # traffic (not Converse messages), but its completion
                    # notification is — stamp it so the PME dependency
                    # chain stays connected in the causal DAG.
                    pe.msg_seq += 1
                    msg_id = (pe.rank, pe.msg_seq)
                    rec.msg_send(msg_id, pe.rank, pe.rank, 0)
                msg = ConverseMessage(hid, 0, self.tag, pe.rank, pe.rank,
                                      msg_id=msg_id)
                yield from runtime._deliver_to_pe(t, msg)

            ctx.post_completion(completion)

        self.runtime.env.process(watch(), name=f"m2m-{self.tag}-completion")

    # -- start ------------------------------------------------------------------
    def start(self):
        """Trigger the burst (generator; runs on the owning PE's thread)."""
        yield from self.pe.process.m2m.start(self.pe.thread, self._m2m)


class CmiDirectManytomany:
    """Factory/registry facade, one per runtime."""

    def __init__(self, runtime: ConverseRuntime) -> None:
        self.runtime = runtime
        self._tags: Dict[int, List[CmiDirectHandle]] = {}

    def register(
        self,
        tag: int,
        pe: PE,
        sends: Sequence[Tuple[int, int, Any]],
        expected_recvs: int,
        on_message: Optional[Callable[[int, Any], None]] = None,
        completion_handler: Optional[int] = None,
        qos: int = QOS_RELIABLE,
        deadline_cycles: Optional[float] = None,
    ) -> CmiDirectHandle:
        """Register one PE's side of a many-to-many pattern.

        Every participating *process* needs exactly one registered
        handle per tag (the underlying PAMI registry is per-process);
        by convention the first PE of each process registers.

        ``qos``/``deadline_cycles`` select the burst's delivery
        semantics and, for best-effort modes, how long the receive side
        waits before completing with shortfall (repro.faults.qos).

        Returns ``None`` when ``pe`` is a remote placeholder (sharded
        runs): the shard owning the PE registers the handle.
        """
        if pe is None:
            return None
        h = CmiDirectHandle(
            self.runtime, tag, pe, sends, expected_recvs, on_message,
            completion_handler, qos=qos, deadline_cycles=deadline_cycles,
        )
        self._tags.setdefault(tag, []).append(h)
        return h

    def handles(self, tag: int) -> List[CmiDirectHandle]:
        return self._tags.get(tag, [])
