"""Converse machine layer: the Charm++ runtime substrate on BG/Q."""

from .alloc import GnuAllocator, PoolAllocator, make_allocator
from .cmidirect import CmiDirectHandle, CmiDirectManytomany
from .machine import ConverseProcess, ConverseRuntime, RunConfig
from .messages import ConverseMessage
from .quiescence import QuiescenceDetector
from .scheduler import PE

__all__ = [
    "CmiDirectHandle",
    "CmiDirectManytomany",
    "ConverseMessage",
    "ConverseProcess",
    "ConverseRuntime",
    "GnuAllocator",
    "PE",
    "PoolAllocator",
    "QuiescenceDetector",
    "RunConfig",
    "make_allocator",
]
