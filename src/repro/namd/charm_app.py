"""Mini-NAMD on the Charm++ runtime (the paper's §IV-B application).

The NAMD work decomposition, faithfully miniaturized:

* **Patch chares** own the atoms of one spatial cell: they integrate
  (velocity Verlet), multicast positions to their compute objects, and
  on PME steps spread charges and exchange grid slabs with the PME
  pencils.
* **Compute chares** (one per interacting patch pair) run the
  non-bonded kernel — real LJ + screened-Coulomb math, charged at the
  QPX cost model — and return forces to their patches.
* **PME pencils** are the pencil FFT in *service* mode: accumulate
  deposited charge slabs, forward FFT (p2p or CmiDirectManytomany
  transposes, the Fig. 3/10 comparison), multiply the Ewald kernel,
  contribute the reciprocal energy, back-transform and return potential
  slabs to the patches, which interpolate their atoms' long-range
  forces.

Numerics are identical to :class:`repro.namd.simulation.SequentialMD`
(same kernels), which the test suite verifies; the simulated-time side
produces the timeline/utilization figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..charm import Chare, Charm
from ..converse import RunConfig
from ..fft.fft3d import FFT3D
from ..fft.pencil import choose_grid
from .forces import bonded_forces, nonbonded_instructions, pair_forces
from .integrator import kinetic_energy
from .patches import PatchGrid
from .pme import greens_function, interpolate_forces, spread_charges
from .system import MolecularSystem

__all__ = ["NamdCharm", "wrapped_overlap"]

#: Integration flops per atom per half-kick+drift.
_INTEGRATE_FLOPS = 25.0
#: Charge spreading / force interpolation flops per atom (order^3 stencil).
_SPREAD_FLOPS_PER_POINT = 8.0


def wrapped_overlap(w0: int, w1: int, a: int, b: int, K: int) -> List[Tuple[int, int, int]]:
    """Pieces of unwrapped window [w0, w1) that wrap into range [a, b).

    Returns ``(u0, u1, local0)`` triples: unwrapped indices [u0, u1)
    map to [local0, local0 + u1 - u0) inside the target range.
    """
    out = []
    for s in range(math.floor(w0 / K), math.floor((w1 - 1) / K) + 1):
        lo = max(w0, s * K + a)
        hi = min(w1, s * K + b)
        if hi > lo:
            out.append((lo, hi, lo - s * K - a))
    return out


class _Patch(Chare):
    """One spatial patch: atoms, integration, PME interpolation."""

    def __init__(self, idx):
        self.app: "NamdCharm" = None
        self.atoms: np.ndarray = None  # global atom indices
        self.pos: np.ndarray = None  # unwrapped local positions
        self.vel: np.ndarray = None
        self.q: np.ndarray = None
        self.mass: np.ndarray = None
        self.computes: List[int] = []
        self.window: Tuple[Tuple[int, int], Tuple[int, int]] = ((0, 0), (0, 0))
        self.pme_pieces_expected = 0
        self.step = 0
        self.forces: Optional[np.ndarray] = None
        self.pme_forces: Optional[np.ndarray] = None
        self._acc: Optional[np.ndarray] = None
        self._force_msgs = 0
        self._pme_pending = False
        self._phi_win: Optional[np.ndarray] = None
        self._phi_pieces = 0
        # Atom-migration state.
        self.mig_round = 0
        self._mig_sent = False
        self._mig_buf: Dict[int, list] = {}

    # -- step flow --------------------------------------------------------
    def start(self):
        """Initial force evaluation round (no integration)."""
        yield from self._gather_forces(first=True)

    def _is_pme_step(self) -> bool:
        app = self.app
        if self.forces is None:  # init round
            return True
        return (self.step + 1) % app.pme_every == 0 or app.pme_every == 1

    def _gather_forces(self, first=False):
        app = self.app
        self._acc = np.zeros_like(self.pos)
        self._force_msgs = 0
        self._pme_pending = self._is_pme_step() and app.pme_enabled
        # Multicast positions (and charges — atoms migrate) to the
        # compute objects.
        for cid in self.computes:
            nbytes = self.pos.size * 8 + self.q.size * 8 + 16
            yield from self.send_to(
                app.computes, cid, "take_positions", nbytes,
                self.step, self.thisIndex, self.pos.copy(), self.q,
            )
        if self._pme_pending:
            yield from self._deposit_charges()
        if first and not self.computes and not self._pme_pending:
            yield from self._complete_forces()

    def _deposit_charges(self):
        """Spread local charges and send slabs to the PME pencils.

        Standard PME sends each slab as a point-to-point entry-method
        message; the optimized PME fills the persistent many-to-many
        slots and triggers the whole burst with one ``start()``
        (§IV-B2: "sets them up with all the communication operations in
        the different phases of PME").
        """
        app = self.app
        n = len(self.atoms)
        yield from self.charge(
            n * app.order**3 * _SPREAD_FLOPS_PER_POINT / 4.0
        )
        W = spread_charges(
            self.pos, self.q, app.K, app.box_arr, app.order,
            window=self.window,
        )
        self._phi_win = np.zeros_like(W)
        self._phi_pieces = 0
        if app.use_m2m_pme:
            for (pencil, region, src_slice) in app.deposit_plan[self.thisIndex]:
                app.dep_slot(self.thisIndex, pencil, region).value = W[src_slice]
            handle = app.m2m_dep_handles[self.thisIndex]
            handle.reset()
            yield from handle.start()
        else:
            for (pencil, region, src_slice) in app.deposit_plan[self.thisIndex]:
                block = W[src_slice]
                nbytes = block.size * 8 + 32
                yield from self.send_to(
                    app.pme.array, pencil, "deposit", nbytes, region, block
                )

    def add_force(self, forces):
        """Force contribution from one compute object."""
        self._acc += forces
        self._force_msgs += 1
        yield from self._check_complete()

    def pme_slab(self, piece_id, block):
        """One potential slab back from a PME pencil (p2p path)."""
        app = self.app
        dst_slice = app.return_plan[self.thisIndex][piece_id]
        self._phi_win[dst_slice] += block
        self._phi_pieces += 1
        if self._phi_pieces >= self.pme_pieces_expected:
            self._phi_pieces = 0
            yield from self.pme_potential_ready()

    def pme_potential_ready(self):
        """The whole potential window is assembled: interpolate forces."""
        app = self.app
        n = len(self.atoms)
        yield from self.charge(n * app.order**3 * _SPREAD_FLOPS_PER_POINT / 4.0)
        self.pme_forces = interpolate_forces(
            self.pos, self.q, self._phi_win, app.box_arr, app.K,
            app.order, window=self.window,
        )
        self._pme_pending = False
        yield from self._check_complete()

    def _check_complete(self):
        if self._force_msgs < len(self.computes) or self._pme_pending:
            return
            yield  # pragma: no cover - generator shape
        yield from self._complete_forces()

    def _complete_forces(self):
        app = self.app
        # Bonded terms internal to this patch.
        e_bond, f_bond = bonded_forces(self.pos, app.patch_bonds[self.thisIndex], app.box_arr)
        total = self._acc + f_bond
        if app.pme_enabled and self.pme_forces is not None:
            total = total + self.pme_forces
        dt = app.dt
        yield from self.charge(len(self.atoms) * _INTEGRATE_FLOPS / 4.0)
        if self.forces is None:
            # Init round: store forces, begin stepping.
            self.forces = total
            yield from self._begin_step()
            return
        # Second half-kick with the new forces.
        self.vel += 0.5 * dt * total / self.mass[:, None]
        self.forces = total
        ke = kinetic_energy(self.vel, self.mass)
        step = self.step
        self.step += 1
        yield from self.contribute(
            ke, "sum", ("namd-step", step), app._on_step_reduction
        )
        if self.step < app.n_steps:
            if app.migrate_every and self.step % app.migrate_every == 0:
                yield from self._start_migration()
            else:
                yield from self._begin_step()

    def _begin_step(self):
        app = self.app
        dt = app.dt
        yield from self.charge(len(self.atoms) * _INTEGRATE_FLOPS / 4.0)
        self.vel += 0.5 * dt * self.forces / self.mass[:, None]
        self.pos += dt * self.vel  # unwrapped (PME windows stay valid)
        yield from self._gather_forces()

    # -- atom migration (NAMD's periodic re-binning) ------------------------
    def _start_migration(self):
        """Wrap positions, hand off atoms that left this patch's cell.

        Every patch sends one migration message per neighbour patch per
        round (possibly carrying zero atoms), so the expected arrival
        count is static; forces of the *next* step are computed from
        the new ownership.  Velocity-Verlet state (``self.forces``)
        travels with the atoms.
        """
        app = self.app
        self.pos %= app.box_arr  # re-enter the primary box
        dests = np.array(
            [app.patch_grid.patch_of_position(p) for p in self.pos], dtype=np.int64
        ) if len(self.pos) else np.empty(0, dtype=np.int64)
        neighbors = app.patch_neighbors[self.thisIndex]
        keep = dests == self.thisIndex
        leaving = ~keep
        if np.any(leaving):
            bad = set(int(d) for d in dests[leaving]) - set(neighbors)
            if bad:
                raise RuntimeError(
                    f"atoms moved beyond neighbour patches {sorted(bad)}; "
                    "shorten migrate_every"
                )
        pmef = self.pme_forces if self.pme_forces is not None else np.zeros_like(self.pos)
        for n in neighbors:
            sel = dests == n
            payload = (
                self.mig_round,
                self.pos[sel].copy(),
                self.vel[sel].copy(),
                self.q[sel].copy(),
                self.mass[sel].copy(),
                self.atoms[sel].copy(),
                self.forces[sel].copy(),
                pmef[sel].copy(),
            )
            nbytes = int(sel.sum()) * 112 + 64
            yield from self.send(n, "immigrants", nbytes, *payload)
        self.pme_forces = pmef[keep]
        for arr_name in ("pos", "vel", "q", "mass", "atoms", "forces"):
            setattr(self, arr_name, getattr(self, arr_name)[keep])
        self._mig_sent = True
        yield from self._check_migration_done()

    def immigrants(self, round_, pos, vel, q, mass, atoms, forces, pme_forces):
        """Atoms arriving from a neighbour patch (one message/neighbour)."""
        self._mig_buf.setdefault(round_, []).append(
            (pos, vel, q, mass, atoms, forces, pme_forces)
        )
        yield from self._check_migration_done()

    def _check_migration_done(self):
        app = self.app
        expected = len(app.patch_neighbors[self.thisIndex])
        buf = self._mig_buf.get(self.mig_round, [])
        if not self._mig_sent or len(buf) < expected:
            return
            yield  # pragma: no cover - generator shape
        pmef = self.pme_forces if self.pme_forces is not None else np.zeros_like(self.pos)
        parts = [
            (self.pos, self.vel, self.q, self.mass, self.atoms, self.forces, pmef)
        ]
        parts += buf
        del self._mig_buf[self.mig_round]
        self._mig_sent = False
        self.mig_round += 1
        self.pos = np.concatenate([p[0] for p in parts])
        self.vel = np.concatenate([p[1] for p in parts])
        self.q = np.concatenate([p[2] for p in parts])
        self.mass = np.concatenate([p[3] for p in parts])
        self.atoms = np.concatenate([p[4] for p in parts])
        self.forces = np.concatenate([p[5] for p in parts])
        self.pme_forces = np.concatenate([p[6] for p in parts])
        app.patch_charges[self.thisIndex] = self.q
        yield from self.charge(len(self.atoms) * 10.0)  # re-binning work
        yield from self._begin_step()


class _Compute(Chare):
    """Non-bonded compute object for one patch pair."""

    def __init__(self, idx):
        self.app: "NamdCharm" = None
        self.pair: Tuple[int, int] = (0, 0)
        self._pending: Dict[int, Dict[int, np.ndarray]] = {}

    def take_positions(self, step, patch_idx, pos, q):
        a, b = self.pair
        slot = self._pending.setdefault(step, {})
        slot[patch_idx] = (pos, q)
        needed = 1 if a == b else 2
        if len(slot) < needed:
            return
            yield  # pragma: no cover
        del self._pending[step]
        app = self.app
        if a == b:
            (pa, qa) = (pb, qb) = slot[a]
        else:
            (pa, qa), (pb, qb) = slot[a], slot[b]
        e, fa, fb, npairs = pair_forces(
            pa, pb, qa, qb,
            app.box_arr, app.cutoff, app.beta,
            same_block=(a == b),
        )
        yield from self.charge(nonbonded_instructions(npairs, qpx=app.qpx))
        if a == b:
            yield from self.send_to(app.patches, a, "add_force", fa.size * 8, fa)
        else:
            yield from self.send_to(app.patches, a, "add_force", fa.size * 8, fa)
            yield from self.send_to(app.patches, b, "add_force", fb.size * 8, fb)


class NamdCharm:
    """Driver: build and run mini-NAMD on a Charm instance."""

    def __init__(
        self,
        charm: Charm,
        system: MolecularSystem,
        n_steps: int = 4,
        pme_every: int = 4,
        pme_enabled: bool = True,
        use_m2m_pme: bool = False,
        beta: float = 0.35,
        order: int = 4,
        dt: Optional[float] = None,
        qpx: bool = True,
        n_pencils: Optional[int] = None,
        migrate_every: Optional[int] = None,
    ) -> None:
        if n_steps < 1:
            raise ValueError("need at least one step")
        if migrate_every is not None and migrate_every < 1:
            raise ValueError("migrate_every must be >= 1")
        self.charm = charm
        self.system = system
        self.n_steps = n_steps
        self.pme_every = pme_every
        self.pme_enabled = pme_enabled
        self.beta = beta
        self.order = order
        self.qpx = qpx
        self.cutoff = system.spec.cutoff
        self.migrate_every = migrate_every
        self.dt = dt if dt is not None else system.spec.timestep_fs * 0.01
        self.box_arr = system.box
        # PME grid; may be non-cubic (ApoA1 uses 108 x 108 x 80).
        self.K = system.spec.pme_grid
        self.step_log: List[Tuple[float, float]] = []  # (sim time, kinetic E)
        self.recip_energies: List[float] = []
        self.done_value = None
        # PME cycles: one for the initial force evaluation plus one per
        # step whose post-drift forces refresh PME.
        self.expected_pme_cycles = 0
        if pme_enabled:
            self.expected_pme_cycles = 1 + sum(
                1
                for s in range(n_steps)
                if (s + 1) % pme_every == 0 or pme_every == 1
            )

        # Timeline categories for the Projections-style figures.
        for method, cat in (
            ("start", "integrate"),
            ("add_force", "integrate"),
            ("take_positions", "nonbonded"),
            ("deposit", "pme"),
            ("pme_slab", "pme"),
            ("begin", "pme"),
            ("recv_block", "pme"),
            ("phase_done", "pme"),
        ):
            try:
                charm.set_entry_category(method, cat)
            except RuntimeError:
                pass

        # ---- patches --------------------------------------------------
        self.patch_grid = PatchGrid.for_cutoff(system.spec.box, system.spec.cutoff)
        bins = self.patch_grid.bin_atoms(system.positions)
        patch_ids = [p for p in range(self.patch_grid.n_patches)]
        self.patches = charm.create_array("namd-patches", _Patch, patch_ids)
        self.patch_charges: Dict[int, np.ndarray] = {}
        self.patch_bonds: Dict[int, list] = {p: [] for p in patch_ids}
        atom_to_patch: Dict[int, Tuple[int, int]] = {}
        for p in patch_ids:
            ch = self.patches.element(p)
            ch.app = self
            idx = bins[p]
            ch.atoms = idx
            ch.pos = system.positions[idx].copy()
            ch.vel = system.velocities[idx].copy()
            ch.q = system.charges[idx].copy()
            ch.mass = system.masses[idx].copy()
            self.patch_charges[p] = ch.q
            for local, a in enumerate(idx):
                atom_to_patch[int(a)] = (p, local)
        # Bonds whose atoms share a patch are handled by that patch;
        # cross-patch bonds are dropped in the distributed app (the
        # synthetic builder bonds lattice neighbours, which share a
        # patch except across patch boundaries — the sequential/charm
        # equivalence test uses a matching system).
        self.dropped_bonds = 0
        for (i, j, r0, k) in system.bonds:
            pi, li = atom_to_patch[i]
            pj, lj = atom_to_patch[j]
            if pi == pj:
                self.patch_bonds[pi].append((li, lj, r0, k))
            else:
                self.dropped_bonds += 1

        # ---- computes -----------------------------------------------------
        pairs = self.patch_grid.neighbor_pairs()
        self.computes = charm.create_array(
            "namd-computes",
            _Compute,
            range(len(pairs)),
            map_fn=self._compute_map(pairs),
        )
        for cid, pair in enumerate(pairs):
            cc = self.computes.element(cid)
            cc.app = self
            cc.pair = pair
            a, b = pair
            self.patches.element(a).computes.append(cid)
            if b != a:
                self.patches.element(b).computes.append(cid)

        # ---- migration topology ---------------------------------------------
        self.patch_neighbors: Dict[int, list] = {p: [] for p in patch_ids}
        for (a, b) in pairs:
            if a != b:
                self.patch_neighbors[a].append(b)
                self.patch_neighbors[b].append(a)
        for p in patch_ids:
            self.patch_neighbors[p] = sorted(set(self.patch_neighbors[p]))
        if migrate_every is not None and any(self.patch_bonds.values()):
            raise ValueError(
                "atom migration requires an unbonded system (patch-local "
                "bond indices do not survive re-binning)"
            )

        # ---- PME pencils ---------------------------------------------------
        self.pme: Optional[FFT3D] = None
        self.use_m2m_pme = use_m2m_pme
        if pme_enabled:
            self._setup_pme(use_m2m_pme, n_pencils)

    # -- placement ---------------------------------------------------------
    def _compute_map(self, pairs):
        patches = self.patches

        def fn(idx, ordinal, npes):
            a, b = pairs[ordinal]
            # Alternate between the two patches' PEs (NAMD places
            # computes next to one of their patches).
            home = patches.pe_of(a) if ordinal % 2 == 0 else patches.pe_of(b)
            return home

        return fn

    # -- PME wiring ------------------------------------------------------------
    def _setup_pme(self, use_m2m: bool, n_pencils: Optional[int]) -> None:
        charm = self.charm
        Kx, Ky, _Kz = self.K
        n_pencils = n_pencils if n_pencils is not None else min(charm.npes, Kx * Ky)
        # deposit_plan[patch] = [(pencil_idx, region, src_slice)]
        # return_plan[patch]  = [slices into the patch window, by piece id]
        self.deposit_plan: Dict[int, list] = {}
        self.return_plan: Dict[int, list] = {}
        deposits_expected: Dict[Tuple[int, int], int] = {}
        collect_plan: Dict[Tuple[int, int], list] = {}

        # Build the FFT service first to know the pencil grid.
        self.pme = FFT3D(
            charm,
            self.K,
            nchares=n_pencils,
            use_m2m=use_m2m,
            service=True,
            post_forward=self._pme_kernel,
            on_backward=self._pme_collect,
            deposits_expected=deposits_expected,
            data=np.zeros(self.K, dtype=np.complex128),
        )
        g = self.pme.grid
        self._green = greens_function(self.K, self.box_arr, self.beta, self.order)
        self._ntot = int(np.prod(self.K))
        self._green_slices: Dict[Tuple[int, int], np.ndarray] = {}
        for (r, c) in self.pme.array.indices:
            (y0, y1), (z0, z1) = g.y2_ranges[r], g.z_ranges[c]
            self._green_slices[(r, c)] = self._green[:, y0:y1, z0:z1]

        for p in range(self.patch_grid.n_patches):
            window = self.patch_grid.pme_footprint(p, self.K, self.order)
            patch = self.patches.element(p)
            patch.window = window
            (wx0, wx1), (wy0, wy1) = window
            plan = []
            returns = []
            for (r, c) in self.pme.array.indices:
                (ax, bx), (ay, by) = g.x_ranges[r], g.y_ranges[c]
                xp = wrapped_overlap(wx0, wx1, ax, bx, Kx)
                yp = wrapped_overlap(wy0, wy1, ay, by, Ky)
                for (xu0, xu1, gx0) in xp:
                    for (yu0, yu1, gy0) in yp:
                        region = (gx0, gx0 + xu1 - xu0, gy0, gy0 + yu1 - yu0)
                        src = (
                            slice(xu0 - wx0, xu1 - wx0),
                            slice(yu0 - wy0, yu1 - wy0),
                            slice(None),
                        )
                        piece_id = len(returns)
                        plan.append(((r, c), region, src))
                        returns.append(src)
                        deposits_expected[(r, c)] = deposits_expected.get((r, c), 0) + 1
                        collect_plan.setdefault((r, c), []).append((p, piece_id, region))
            self.deposit_plan[p] = plan
            self.return_plan[p] = returns
            patch.pme_pieces_expected = len(returns)
        self._collect_plan = collect_plan
        self._pme_cycle = 0
        if use_m2m:
            self._setup_pme_m2m(deposits_expected)

    # -- optimized PME: every phase through persistent m2m handles -----------
    def _setup_pme_m2m(self, deposits_expected) -> None:
        """Wire charge-slab deposits and potential returns through
        CmiDirectManytomany (the paper's optimized PME registers *all*
        phases on persistent handles)."""
        charm = self.charm
        runtime = charm.runtime
        uid = self.pme.uid
        self._dep_slots: Dict[Tuple[int, Tuple[int, int], tuple], object] = {}
        self._ret_slots: Dict[Tuple[Tuple[int, int], int, int], object] = {}
        self.m2m_dep_handles = {}
        self.m2m_ret_handles = {}
        self.m2m_pen_handles = {}
        #: First-arrival flag: zero the pencil grid per cycle.
        self._dep_fresh = {idx: True for idx in self.pme.array.indices}

        dep_hid = runtime.register_handler(self._m2m_dep_complete, category="pme")
        ret_hid = runtime.register_handler(self._m2m_ret_complete, category="pme")

        class _Slot:
            __slots__ = ("value",)

            def __init__(self):
                self.value = None

        def dep_slot(patch, pencil, region):
            key = (patch, pencil, region)
            s = self._dep_slots.get(key)
            if s is None:
                s = _Slot()
                self._dep_slots[key] = s
            return s

        def ret_slot(pencil, patch, piece_id):
            key = (pencil, patch, piece_id)
            s = self._ret_slots.get(key)
            if s is None:
                s = _Slot()
                self._ret_slots[key] = s
            return s

        self.dep_slot = dep_slot
        self.ret_slot = ret_slot

        # Patch side: deposit-send handles + return-receive handles.
        for p in range(self.patch_grid.n_patches):
            patch_pe = runtime.pes[self.patches.pe_of(p)]
            sends = []
            for (pencil, region, src_slice) in self.deposit_plan[p]:
                x0, x1, y0, y1 = region
                nbytes = (x1 - x0) * (y1 - y0) * self.K[2] * 8 + 32
                slot = dep_slot(p, pencil, region)
                sends.append(
                    (
                        self.pme.array.pe_of(pencil),
                        nbytes,
                        (pencil, region, slot),
                        (uid, "pmedep", pencil),
                    )
                )
            self.m2m_dep_handles[p] = charm.cmidirect.register(
                (uid, "patchdep", p), patch_pe, sends, expected_recvs=0
            )
            self.m2m_ret_handles[p] = charm.cmidirect.register(
                (uid, "pmeret", p),
                patch_pe,
                [],
                expected_recvs=len(self.return_plan[p]),
                on_message=self._on_m2m_return,
                completion_handler=ret_hid,
            )

        # Pencil side: deposit-receive + return-send handles.
        for idx in self.pme.array.indices:
            pencil_pe = runtime.pes[self.pme.array.pe_of(idx)]
            sends = []
            for (patch, piece_id, region) in self._collect_plan.get(idx, []):
                x0, x1, y0, y1 = region
                nbytes = (x1 - x0) * (y1 - y0) * self.K[2] * 8 + 32
                slot = ret_slot(idx, patch, piece_id)
                sends.append(
                    (
                        self.patches.pe_of(patch),
                        nbytes,
                        (patch, piece_id, slot),
                        (uid, "pmeret", patch),
                    )
                )
            self.m2m_pen_handles[idx] = charm.cmidirect.register(
                (uid, "pmedep", idx),
                pencil_pe,
                sends,
                expected_recvs=deposits_expected.get(idx, 0),
                on_message=self._on_m2m_deposit,
                completion_handler=dep_hid,
            )

    def _on_m2m_deposit(self, src_node, data) -> None:
        pencil, region, slot = data
        chare = self.pme.array.element(pencil)
        if self._dep_fresh[pencil]:
            self._dep_fresh[pencil] = False
            chare.data = np.zeros(
                self.pme.grid.z_shape(*pencil), dtype=np.complex128
            )
        x0, x1, y0, y1 = region
        chare.data[x0:x1, y0:y1, :] += slot.value

    def _m2m_dep_complete(self, pe, msg):
        """All charge slabs arrived at one pencil: run the FFT cycle."""
        _uid, _kind, pencil = msg.payload
        self.m2m_pen_handles[pencil].reset()
        self._dep_fresh[pencil] = True
        chare = self.pme.array.element(pencil)
        yield from chare.begin()

    def _on_m2m_return(self, src_node, data) -> None:
        patch, piece_id, slot = data
        ch = self.patches.element(patch)
        ch._phi_win[self.return_plan[patch][piece_id]] += slot.value

    def _m2m_ret_complete(self, pe, msg):
        """The whole potential window is back at one patch."""
        _uid, _kind, patch = msg.payload
        self.m2m_ret_handles[patch].reset()
        ch = self.patches.element(patch)
        yield from ch.pme_potential_ready()

    def _pme_kernel(self, chare):
        """Green's-function multiply + reciprocal-energy contribution."""
        C = self._green_slices[(chare.r, chare.c)]
        e_part = 0.5 * float(np.sum(C * np.abs(chare.x_data) ** 2))
        chare.x_data *= C * self._ntot
        yield from chare.contribute(
            e_part, "sum", ("pme-energy", chare.iteration), self._on_pme_energy
        )

    def _on_pme_energy(self, value):
        self.recip_energies.append(value)
        self._maybe_exit()

    def _pme_collect(self, chare):
        """Send potential slabs back to the patches.

        Standard PME: one entry-method message per piece.  Optimized
        PME: fill the persistent slots and trigger the burst.
        """
        idx = (chare.r, chare.c)
        if self.use_m2m_pme:
            for (patch, piece_id, region) in self._collect_plan.get(idx, []):
                x0, x1, y0, y1 = region
                self.ret_slot(idx, patch, piece_id).value = (
                    chare.data[x0:x1, y0:y1, :].real.copy()
                )
            yield from self.m2m_pen_handles[idx].start()
        else:
            for (patch, piece_id, region) in self._collect_plan.get(idx, []):
                x0, x1, y0, y1 = region
                block = chare.data[x0:x1, y0:y1, :].real.copy()
                nbytes = block.size * 8 + 32
                yield from chare.send_to(
                    self.patches, patch, "pme_slab", nbytes, piece_id, block
                )

    # -- reductions / run -----------------------------------------------------
    def _on_step_reduction(self, ke):
        self.step_log.append((self.charm.env.now, ke))
        self._maybe_exit()

    def _maybe_exit(self):
        if (
            len(self.step_log) >= self.n_steps
            and len(self.recip_energies) >= self.expected_pme_cycles
        ):
            self.charm.exit(self)

    def run(self):
        for p in range(self.patch_grid.n_patches):
            self.charm.seed(self.patches, p, "start")
        return self.charm.run()

    # -- results ----------------------------------------------------------
    def gather_positions(self) -> np.ndarray:
        """Assemble global positions (wrapped) from the patches."""
        out = np.zeros_like(self.system.positions)
        for p in range(self.patch_grid.n_patches):
            ch = self.patches.element(p)
            out[ch.atoms] = ch.pos % self.box_arr
        return out

    def gather_velocities(self) -> np.ndarray:
        out = np.zeros_like(self.system.velocities)
        for p in range(self.patch_grid.n_patches):
            ch = self.patches.element(p)
            out[ch.atoms] = ch.vel
        return out
