"""Spatial patch decomposition (NAMD's hybrid decomposition).

NAMD splits the box into *patches* no smaller than the cutoff, so that
all non-bonded interactions involve atoms of a patch and its 26
neighbours; *compute objects* handle each patch pair.  This module
provides the geometry: patch grid construction, atom binning, and the
neighbour-pair list with minimum-image wrap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["PatchGrid"]


@dataclass(frozen=True)
class PatchGrid:
    """A regular grid of patches covering the periodic box."""

    box: Tuple[float, float, float]
    dims: Tuple[int, int, int]

    @classmethod
    def for_cutoff(cls, box: Sequence[float], cutoff: float) -> "PatchGrid":
        """Largest grid whose cells are at least ``cutoff`` wide."""
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        dims = tuple(max(1, int(b // cutoff)) for b in box)
        return cls(tuple(float(b) for b in box), dims)

    @property
    def n_patches(self) -> int:
        return self.dims[0] * self.dims[1] * self.dims[2]

    def patch_index(self, coords: Tuple[int, int, int]) -> int:
        cx, cy, cz = coords
        return (cx * self.dims[1] + cy) * self.dims[2] + cz

    def patch_coords(self, index: int) -> Tuple[int, int, int]:
        cz = index % self.dims[2]
        cy = (index // self.dims[2]) % self.dims[1]
        cx = index // (self.dims[1] * self.dims[2])
        return (cx, cy, cz)

    def patch_of_position(self, pos: np.ndarray) -> int:
        cell = tuple(
            min(int(pos[d] / self.box[d] * self.dims[d]), self.dims[d] - 1)
            for d in range(3)
        )
        return self.patch_index(cell)

    def bin_atoms(self, positions: np.ndarray) -> Dict[int, np.ndarray]:
        """Atom indices per patch."""
        positions = np.asarray(positions)
        scaled = positions / np.asarray(self.box) * np.asarray(self.dims)
        cells = np.minimum(scaled.astype(int), np.asarray(self.dims) - 1)
        flat = (cells[:, 0] * self.dims[1] + cells[:, 1]) * self.dims[2] + cells[:, 2]
        out: Dict[int, np.ndarray] = {}
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        boundaries = np.searchsorted(sorted_flat, np.arange(self.n_patches + 1))
        for p in range(self.n_patches):
            lo, hi = boundaries[p], boundaries[p + 1]
            if hi > lo:
                out[p] = order[lo:hi]
            else:
                out[p] = np.empty(0, dtype=np.int64)
        return out

    def neighbor_pairs(self) -> List[Tuple[int, int]]:
        """All interacting patch pairs, each once, including self-pairs.

        With periodic wrap a neighbour may coincide with the patch
        itself along a dimension of size 1 or 2; duplicates collapse.
        """
        pairs = set()
        for index in range(self.n_patches):
            cx, cy, cz = self.patch_coords(index)
            for dx, dy, dz in itertools.product((-1, 0, 1), repeat=3):
                nx = (cx + dx) % self.dims[0]
                ny = (cy + dy) % self.dims[1]
                nz = (cz + dz) % self.dims[2]
                other = self.patch_index((nx, ny, nz))
                pairs.add((min(index, other), max(index, other)))
        return sorted(pairs)

    def pme_footprint(
        self,
        patch: int,
        pme_grid: Tuple[int, int, int],
        order: int,
        margin: float = 2.0,
    ) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Unwrapped (x, y) grid-index window a patch's charges touch.

        Covers the patch's spatial extent plus ``margin`` Angstrom of
        atom drift plus the B-spline support.  Windows are *unwrapped*
        (may extend below 0 or beyond K); the PME pencil mapping wraps
        them modulo the grid.
        """
        cx, cy, _ = self.patch_coords(patch)
        Kx, Ky, _ = pme_grid
        out = []
        for c, dim, K, b in ((cx, self.dims[0], Kx, self.box[0]), (cy, self.dims[1], Ky, self.box[1])):
            width = b / dim
            lo = (c * width - margin) / b * K
            hi = ((c + 1) * width + margin) / b * K
            g0 = int(np.floor(lo)) - order  # spline support below
            g1 = int(np.ceil(hi)) + 1
            out.append((g0, g1))
        return tuple(out)
