"""Synthetic molecular systems (substitute for the paper's inputs).

The paper benchmarks ApoA1 (92,000 atoms) and two STMV assemblies
(20 M and 100 M atoms).  The actual structures are irrelevant to the
runtime behaviour under study — what matters is atom count, density,
cutoff and PME grid size, which set the compute/communication volumes.
:class:`SystemSpec` carries exactly those parameters (with the paper's
published values), and :func:`build_system` instantiates a jittered-
lattice system of any size with matching density for the runnable
simulations and DES experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["SystemSpec", "MolecularSystem", "build_system", "APOA1", "STMV20M", "STMV100M"]


@dataclass(frozen=True)
class SystemSpec:
    """Benchmark-relevant parameters of a molecular system."""

    name: str
    n_atoms: int
    box: Tuple[float, float, float]  # Angstrom
    pme_grid: Tuple[int, int, int]
    cutoff: float = 12.0  # Angstrom [paper: "12 Angstrom cutoff"]
    timestep_fs: float = 1.0  # [paper: "1 femto second time step"]

    @property
    def density(self) -> float:
        v = self.box[0] * self.box[1] * self.box[2]
        return self.n_atoms / v


#: ApoA1: 92k atoms, the standard NAMD benchmark [paper §V-B].
APOA1 = SystemSpec(
    name="ApoA1",
    n_atoms=92_224,
    box=(108.86, 108.86, 77.76),
    pme_grid=(108, 108, 80),
)

#: STMV 20-million-atom assembly: 1 x 5 x 4 replicas of the 1,066,628-
#: atom STMV unit cell (216.832 A cube); the paper's PME grid
#: (216 x 1080 x 864, Fig. 12) is exactly ~1 A spacing over that box.
STMV20M = SystemSpec(
    name="STMV-20M",
    n_atoms=21_332_560,
    box=(216.832, 1084.16, 867.328),
    pme_grid=(216, 1080, 864),
)

#: STMV 100-million-atom assembly: 5 x 5 x 4 replicas (Table II).
STMV100M = SystemSpec(
    name="STMV-100M",
    n_atoms=106_662_800,
    box=(1084.16, 1084.16, 867.328),
    pme_grid=(1080, 1080, 864),
)


@dataclass
class MolecularSystem:
    """A concrete, runnable system: positions, charges, bonds."""

    spec: SystemSpec
    positions: np.ndarray  # (N, 3) Angstrom
    velocities: np.ndarray  # (N, 3) Angstrom/fs
    charges: np.ndarray  # (N,) e, neutral overall
    masses: np.ndarray  # (N,) amu
    #: Harmonic bonds: (i, j, r0, k) with k in e^2/A^3-ish model units.
    bonds: List[Tuple[int, int, float, float]] = field(default_factory=list)
    #: Harmonic angles: (i, j, k, theta0, k_angle) with j the vertex.
    angles: List[Tuple[int, int, int, float, float]] = field(default_factory=list)

    def exclusions(self) -> List[Tuple[int, int]]:
        """Non-bonded exclusion pairs: 1-2 (bonds) and 1-3 (angles)."""
        pairs = {(min(i, j), max(i, j)) for (i, j, _r0, _k) in self.bonds}
        pairs |= {(min(i, k), max(i, k)) for (i, _j, k, _t0, _ka) in self.angles}
        return sorted(pairs)

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def box(self) -> np.ndarray:
        return np.asarray(self.spec.box)

    def wrap(self) -> None:
        """Wrap positions back into the primary box (periodic)."""
        self.positions %= self.box


def build_system(
    n_atoms: int,
    spec_like: SystemSpec = APOA1,
    seed: int = 2013,
    bond_fraction: float = 0.5,
    temperature: float = 0.0,
    angle_fraction: float = 0.0,
) -> MolecularSystem:
    """Build an ``n_atoms`` synthetic system at ``spec_like``'s density.

    Atoms sit on a jittered cubic lattice (no overlaps), alternate +/-
    partial charges sum to exactly zero, and ``bond_fraction`` of atoms
    are paired into harmonic bonds with their lattice neighbour.  With
    ``angle_fraction > 0``, that fraction of atoms form three-atom
    chains carrying two bonds and a harmonic angle (taking precedence
    over plain pair bonds for those atoms).  A PME grid of matching
    resolution (~1 A spacing) is chosen.
    """
    if n_atoms < 2:
        raise ValueError("need at least two atoms")
    rng = np.random.default_rng(seed)
    # Box with the reference density, cubic-ish.
    volume = n_atoms / spec_like.density
    side = volume ** (1.0 / 3.0)
    box = (side, side, side)
    per_dim = int(np.ceil(n_atoms ** (1 / 3)))
    spacing = side / per_dim
    idx = np.arange(per_dim**3)[:n_atoms]
    coords = np.stack(
        [idx // per_dim**2, (idx // per_dim) % per_dim, idx % per_dim], axis=1
    ).astype(np.float64)
    positions = (coords + 0.5) * spacing
    positions += rng.normal(scale=0.1 * spacing, size=positions.shape)
    positions %= np.asarray(box)

    charges = np.where(idx % 2 == 0, 0.4, -0.4)
    if n_atoms % 2 == 1:
        charges[-1] = 0.0  # keep the system exactly neutral
    masses = np.full(n_atoms, 12.0)
    velocities = np.zeros((n_atoms, 3))
    if temperature > 0:
        # Maxwell-Boltzmann-ish (model units; kB folded into T scale).
        velocities = rng.normal(scale=np.sqrt(temperature / masses)[:, None], size=(n_atoms, 3))
        velocities -= velocities.mean(axis=0)

    def _image_distance(i: int, j: int) -> float:
        d = positions[j] - positions[i]
        d -= np.round(d / np.asarray(box)) * np.asarray(box)
        return float(np.linalg.norm(d))

    def _image_angle(i: int, j: int, k: int) -> float:
        rij = positions[i] - positions[j]
        rkj = positions[k] - positions[j]
        rij -= np.round(rij / np.asarray(box)) * np.asarray(box)
        rkj -= np.round(rkj / np.asarray(box)) * np.asarray(box)
        c = float(rij @ rkj / (np.linalg.norm(rij) * np.linalg.norm(rkj)))
        return float(np.arccos(np.clip(c, -1.0, 1.0)))

    bonds: List[Tuple[int, int, float, float]] = []
    angles: List[Tuple[int, int, int, float, float]] = []
    # Three-atom chains first (two bonds + one angle each).
    n_chains = int(angle_fraction * n_atoms / 3)
    used = 0
    for c in range(n_chains):
        i, j, k = 3 * c, 3 * c + 1, 3 * c + 2
        if k >= n_atoms:
            break
        bonds.append((i, j, _image_distance(i, j), 2.0))
        bonds.append((j, k, _image_distance(j, k), 2.0))
        angles.append((i, j, k, _image_angle(i, j, k), 1.0))
        used = k + 1
    # Plain pair bonds over the remaining atoms.
    n_bonds = int(bond_fraction * (n_atoms - used) / 2)
    for b in range(n_bonds):
        i = used + 2 * b
        j = used + 2 * b + 1
        if j >= n_atoms:
            break
        bonds.append((i, j, _image_distance(i, j), 2.0))

    # PME grid at ~1 A resolution, sizes rounded up to even numbers
    # (fast FFT sizes are not essential for the simulation).
    grid = tuple(int(2 * np.ceil(b / 2.0)) for b in box)
    spec = SystemSpec(
        name=f"synthetic-{n_atoms}",
        n_atoms=n_atoms,
        box=box,
        pme_grid=grid,
        cutoff=spec_like.cutoff,
        timestep_fs=spec_like.timestep_fs,
    )
    return MolecularSystem(
        spec=spec,
        positions=positions,
        velocities=velocities,
        charges=charges,
        masses=masses,
        bonds=bonds,
        angles=angles,
    )
