"""Smooth Particle Mesh Ewald (reciprocal space) — real math (§IV-B2).

Implements the Essmann et al. smooth PME used by NAMD for long-range
electrostatics in an orthorhombic periodic box:

1. spread point charges onto a regular grid with cardinal B-splines;
2. 3D FFT of the charge grid;
3. multiply by the Ewald Green's function (with B-spline Euler factors);
4. energy from the reciprocal sum; inverse FFT gives the potential
   grid;
5. interpolate per-atom forces with B-spline derivatives.

Units are Gaussian electrostatic (charges in e, lengths in Angstrom,
energies in e^2/A; multiply by 332.0636 for kcal/mol).  The test suite
validates the implementation against a direct Ewald reciprocal sum and
against numerical gradients.

The distributed version of steps 2-4 runs over the Charm++ runtime via
the pencil FFT (see :mod:`repro.namd.charm_app`); this module holds the
kernels both versions share.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy.special import erfc

__all__ = [
    "bspline_weights",
    "spread_charges",
    "greens_function",
    "pme_reciprocal",
    "interpolate_forces",
    "direct_ewald_reciprocal",
    "ewald_self_energy",
    "ewald_real_space",
]


def bspline_weights(frac: np.ndarray, order: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cardinal B-spline values and derivatives for charge spreading.

    ``frac`` — fractional offsets in [0, 1) of each particle from its
    base grid point, shape (n,).  Returns ``(w, dw)`` of shape
    (n, order): the spline weight and its derivative at each of the
    ``order`` grid points the particle touches (offsets 0..order-1
    *below* the particle: grid point ``floor(u) - order + 1 + j``).
    """
    if order < 2:
        raise ValueError("B-spline order must be >= 2")
    frac = np.asarray(frac, dtype=np.float64)
    n = frac.shape[0]
    # M_2 on the two nearest points.
    w = np.zeros((n, order))
    w[:, 0] = 1.0 - frac
    w[:, 1] = frac
    for k in range(3, order + 1):
        # Recursion M_k(u) = u/(k-1) M_{k-1}(u) + (k-u)/(k-1) M_{k-1}(u-1)
        prev = w.copy()
        w[:, :] = 0.0
        for j in range(k):
            u = frac + (k - 1 - j)  # argument of M_k at this grid offset
            left = prev[:, j - 1] if j >= 1 else 0.0
            right = prev[:, j] if j < k - 1 else 0.0
            w[:, j] = (u * left + (k - u) * right) / (k - 1)
    # Derivative: M_n'(u) = M_{n-1}(u) - M_{n-1}(u-1), mapped to offsets.
    prev = np.zeros((n, order))
    prev[:, 0] = 1.0 - frac
    prev[:, 1] = frac
    for k in range(3, order):
        nxt = np.zeros((n, order))
        for j in range(k):
            u = frac + (k - 1 - j)
            left = prev[:, j - 1] if j >= 1 else 0.0
            right = prev[:, j] if j < k - 1 else 0.0
            nxt[:, j] = (u * left + (k - u) * right) / (k - 1)
        prev = nxt
    dw = np.zeros((n, order))
    for j in range(order):
        m_here = prev[:, j] if j < order - 1 else 0.0
        m_left = prev[:, j - 1] if j >= 1 else 0.0
        dw[:, j] = m_left - m_here
    # Note: offsets run from low to high grid index; with the recursion
    # above, w[:, j] multiplies grid point floor(u) - (order - 1) + j.
    return w, dw


def _grid_indices(positions: np.ndarray, box: np.ndarray, K: Tuple[int, int, int], order: int):
    """Base indices and fractional offsets per dimension."""
    u = positions / box * np.asarray(K)  # scaled fractional coords in [0, K)
    base = np.floor(u).astype(np.int64)
    frac = u - base
    return base, frac


def spread_charges(
    positions: np.ndarray,
    charges: np.ndarray,
    K: Tuple[int, int, int],
    box: np.ndarray,
    order: int = 4,
    window: Optional[Tuple[Tuple[int, int], Tuple[int, int]]] = None,
) -> np.ndarray:
    """Spread charges onto the grid (periodic wrap).

    With ``window=((x0, x1), (y0, y1))`` (unwrapped grid coordinates),
    spreading targets a dense local array of shape
    ``(x1-x0, y1-y0, K[2])`` instead of the full grid — the shape a
    patch sends to the PME pencils.  The window must cover the spline
    support of every particle in x and y.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    Kx, Ky, Kz = K
    base, frac = _grid_indices(positions, box, K, order)
    wx, _ = bspline_weights(frac[:, 0], order)
    wy, _ = bspline_weights(frac[:, 1], order)
    wz, _ = bspline_weights(frac[:, 2], order)
    if window is None:
        grid = np.zeros(K)
        for j in range(order):
            ix = (base[:, 0] - (order - 1) + j) % Kx
            for k in range(order):
                iy = (base[:, 1] - (order - 1) + k) % Ky
                wxy = charges * wx[:, j] * wy[:, k]
                for l in range(order):
                    iz = (base[:, 2] - (order - 1) + l) % Kz
                    np.add.at(grid, (ix, iy, iz), wxy * wz[:, l])
        return grid
    (x0, x1), (y0, y1) = window
    grid = np.zeros((x1 - x0, y1 - y0, Kz))
    for j in range(order):
        ix = base[:, 0] - (order - 1) + j - x0
        if np.any(ix < 0) or np.any(ix >= x1 - x0):
            raise ValueError("window does not cover x spline support")
        for k in range(order):
            iy = base[:, 1] - (order - 1) + k - y0
            if np.any(iy < 0) or np.any(iy >= y1 - y0):
                raise ValueError("window does not cover y spline support")
            wxy = charges * wx[:, j] * wy[:, k]
            for l in range(order):
                iz = (base[:, 2] - (order - 1) + l) % Kz
                np.add.at(grid, (ix, iy, iz), wxy * wz[:, l])
    return grid


def _bspline_euler_factor(K: int, order: int) -> np.ndarray:
    """|b(m)|^2 for one dimension (Essmann eq. 4.4)."""
    m = np.arange(K)
    # M_n values at integer arguments 1..n-1.
    w, _ = bspline_weights(np.zeros(1), order)
    # M_n(k+1) for k=0..n-2: with frac=0, w[0, j] = M_n at u = n-1-j... use
    # direct evaluation instead: M_n(x) at integers via recursion.
    mn = _bspline_at_integers(order)  # M_n(1..n-1)
    phase = np.exp(2j * np.pi * np.outer(m, np.arange(order - 1)) / K)
    denom = phase @ mn
    mag2 = np.abs(denom) ** 2
    # Avoid division blowups where the denominator vanishes (odd orders
    # at the Nyquist frequency); those modes get zero weight.
    out = np.zeros(K)
    ok = mag2 > 1e-12
    out[ok] = 1.0 / mag2[ok]
    return out


def _bspline_at_integers(order: int) -> np.ndarray:
    """M_order evaluated at integer points 1..order-1."""
    # M_2(x) = 1 - |x-1| on [0,2]
    vals = {1: 1.0}  # M_2(1) = 1
    cur = {1: 1.0}
    for n in range(3, order + 1):
        nxt = {}
        for x in range(1, n):
            a = cur.get(x, 0.0)  # M_{n-1}(x)
            b = cur.get(x - 1, 0.0)  # M_{n-1}(x-1)
            nxt[x] = (x * a + (n - x) * b) / (n - 1)
        cur = nxt
    return np.array([cur.get(x, 0.0) for x in range(1, order)])


def greens_function(
    K: Tuple[int, int, int], box: np.ndarray, beta: float, order: int = 4
) -> np.ndarray:
    """The PME reciprocal-space kernel C(m) (zero at m = 0).

    ``E = 1/2 * sum_m C(m) |FFT(Q)(m)|^2`` and the potential grid is
    ``phi = Ntot * IFFT(C * FFT(Q))``.
    """
    box = np.asarray(box, dtype=np.float64)
    V = float(np.prod(box))
    mx = np.fft.fftfreq(K[0]) * K[0] / box[0]
    my = np.fft.fftfreq(K[1]) * K[1] / box[1]
    mz = np.fft.fftfreq(K[2]) * K[2] / box[2]
    m2 = (
        mx[:, None, None] ** 2 + my[None, :, None] ** 2 + mz[None, None, :] ** 2
    )
    bx = _bspline_euler_factor(K[0], order)
    by = _bspline_euler_factor(K[1], order)
    bz = _bspline_euler_factor(K[2], order)
    b2 = bx[:, None, None] * by[None, :, None] * bz[None, None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        C = np.exp(-(np.pi**2) * m2 / beta**2) / m2
    C[0, 0, 0] = 0.0
    return C * b2 / (np.pi * V)


def pme_reciprocal(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    K: Tuple[int, int, int],
    beta: float,
    order: int = 4,
) -> Tuple[float, np.ndarray]:
    """Full single-node reciprocal PME: returns (energy, forces)."""
    Q = spread_charges(positions, charges, K, box, order)
    C = greens_function(K, box, beta, order)
    F = np.fft.fftn(Q)
    energy = 0.5 * float(np.sum(C * np.abs(F) ** 2))
    Ntot = int(np.prod(K))
    phi = np.real(np.fft.ifftn(C * F)) * Ntot
    forces = interpolate_forces(positions, charges, phi, box, K, order)
    return energy, forces


def interpolate_forces(
    positions: np.ndarray,
    charges: np.ndarray,
    phi: np.ndarray,
    box: np.ndarray,
    K: Tuple[int, int, int],
    order: int = 4,
    window: Optional[Tuple[Tuple[int, int], Tuple[int, int]]] = None,
) -> np.ndarray:
    """Forces from the potential grid via B-spline derivative weights.

    ``phi`` is the full grid, or — with ``window`` — the dense local
    slab ``(x1-x0, y1-y0, K[2])`` in unwrapped coordinates (the shape a
    patch receives back from the PME pencils).
    """
    positions = np.asarray(positions, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    Kx, Ky, Kz = K
    n = positions.shape[0]
    base, frac = _grid_indices(positions, box, K, order)
    wx, dwx = bspline_weights(frac[:, 0], order)
    wy, dwy = bspline_weights(frac[:, 1], order)
    wz, dwz = bspline_weights(frac[:, 2], order)
    forces = np.zeros((n, 3))
    sx, sy, sz = Kx / box[0], Ky / box[1], Kz / box[2]
    if window is not None:
        (x0, _x1), (y0, _y1) = window
    for j in range(order):
        for k in range(order):
            for l in range(order):
                if window is None:
                    ix = (base[:, 0] - (order - 1) + j) % Kx
                    iy = (base[:, 1] - (order - 1) + k) % Ky
                else:
                    ix = base[:, 0] - (order - 1) + j - x0
                    iy = base[:, 1] - (order - 1) + k - y0
                iz = (base[:, 2] - (order - 1) + l) % Kz
                p = phi[ix, iy, iz]
                forces[:, 0] -= charges * dwx[:, j] * wy[:, k] * wz[:, l] * p * sx
                forces[:, 1] -= charges * wx[:, j] * dwy[:, k] * wz[:, l] * p * sy
                forces[:, 2] -= charges * wx[:, j] * wy[:, k] * dwz[:, l] * p * sz
    return forces


# ---------- references for validation -----------------------------------------

def direct_ewald_reciprocal(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    beta: float,
    mmax: int = 8,
) -> Tuple[float, np.ndarray]:
    """Direct (exact) Ewald reciprocal sum — O(N * mmax^3) reference."""
    positions = np.asarray(positions, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    V = float(np.prod(box))
    n = positions.shape[0]
    energy = 0.0
    forces = np.zeros((n, 3))
    for m1 in range(-mmax, mmax + 1):
        for m2 in range(-mmax, mmax + 1):
            for m3 in range(-mmax, mmax + 1):
                if m1 == 0 and m2 == 0 and m3 == 0:
                    continue
                m = np.array([m1 / box[0], m2 / box[1], m3 / box[2]])
                msq = float(m @ m)
                factor = math.exp(-(math.pi**2) * msq / beta**2) / msq
                phase = 2 * np.pi * positions @ m
                S = np.sum(charges * np.exp(1j * phase))
                energy += factor * abs(S) ** 2
                coef = (1.0 / (np.pi * V)) * factor
                # F_i = -dE/dr_i = (2/V) f(m) q_i m Im[conj(S) e^{i phase_i}]
                forces += (
                    coef
                    * charges[:, None]
                    * np.imag(np.conj(S) * np.exp(1j * phase))[:, None]
                    * (2 * np.pi * m)[None, :]
                )
    energy *= 1.0 / (2 * np.pi * V)
    return energy, forces


def ewald_self_energy(charges: np.ndarray, beta: float) -> float:
    """Self-interaction correction: -beta/sqrt(pi) * sum q^2."""
    return -beta / math.sqrt(math.pi) * float(np.sum(np.asarray(charges) ** 2))


def ewald_real_space(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    beta: float,
    cutoff: float,
) -> Tuple[float, np.ndarray]:
    """Real-space Ewald (erfc-screened Coulomb) with minimum image.

    O(N^2) vectorized pair sum — reference/sequential path; the cell
    list in :mod:`repro.namd.patches` bounds the cost for larger N.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    n = positions.shape[0]
    delta = positions[:, None, :] - positions[None, :, :]
    delta -= np.round(delta / box) * box
    r2 = np.sum(delta**2, axis=-1)
    np.fill_diagonal(r2, np.inf)
    mask = r2 < cutoff**2
    r = np.sqrt(np.where(mask, r2, 1.0))
    qq = charges[:, None] * charges[None, :]
    e_pair = np.where(mask, qq * erfc(beta * r) / r, 0.0)
    energy = 0.5 * float(np.sum(e_pair))
    # dE/dr for the screened Coulomb pair term.
    dedr = np.where(
        mask,
        -qq
        * (
            erfc(beta * r) / r2
            + 2 * beta / math.sqrt(math.pi) * np.exp(-(beta**2) * r2) / r
        ),
        0.0,
    )
    fmag = -dedr / r  # force magnitude along delta
    forces = np.sum(np.where(mask[..., None], fmag[..., None] * delta, 0.0), axis=1)
    return energy, forces
