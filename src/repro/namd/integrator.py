"""Velocity-Verlet integration and diagnostics."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kick", "drift", "kinetic_energy", "temperature", "remove_drift"]


def kick(velocities: np.ndarray, forces: np.ndarray, masses: np.ndarray, dt: float) -> None:
    """Half-step velocity update, in place: v += (dt/2) F/m."""
    velocities += 0.5 * dt * forces / masses[:, None]


def drift(positions: np.ndarray, velocities: np.ndarray, dt: float, box: np.ndarray) -> None:
    """Full-step position update with periodic wrap, in place."""
    positions += dt * velocities
    positions %= box


def kinetic_energy(velocities: np.ndarray, masses: np.ndarray) -> float:
    return 0.5 * float(np.sum(masses[:, None] * velocities**2))


def temperature(velocities: np.ndarray, masses: np.ndarray) -> float:
    """Instantaneous temperature in model units (kB = 1)."""
    n = velocities.shape[0]
    dof = max(1, 3 * n - 3)
    return 2.0 * kinetic_energy(velocities, masses) / dof


def remove_drift(velocities: np.ndarray, masses: np.ndarray) -> None:
    """Zero the centre-of-mass momentum, in place."""
    p = np.sum(masses[:, None] * velocities, axis=0)
    velocities -= p / np.sum(masses)
