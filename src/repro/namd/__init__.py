"""Mini-NAMD: molecular dynamics with PME on the Charm++ runtime (§IV-B).

Real force math (LJ + Ewald real-space, harmonic bonds, smooth PME) on
synthetic systems matching the paper's benchmark parameters, with a
sequential reference engine and a fully distributed Charm++ version.
"""

from .charm_app import NamdCharm
from .forces import (
    angle_forces,
    bonded_forces,
    exclusion_corrections,
    nonbonded_instructions,
    nonbonded_instructions_tuned,
    pair_forces,
)
from .patches import PatchGrid
from .pme import (
    direct_ewald_reciprocal,
    ewald_real_space,
    ewald_self_energy,
    greens_function,
    interpolate_forces,
    pme_reciprocal,
    spread_charges,
)
from .simulation import SequentialMD, StepEnergies
from .system import APOA1, STMV20M, STMV100M, MolecularSystem, SystemSpec, build_system

__all__ = [
    "APOA1",
    "MolecularSystem",
    "NamdCharm",
    "PatchGrid",
    "STMV100M",
    "STMV20M",
    "SequentialMD",
    "StepEnergies",
    "SystemSpec",
    "angle_forces",
    "bonded_forces",
    "exclusion_corrections",
    "build_system",
    "direct_ewald_reciprocal",
    "ewald_real_space",
    "ewald_self_energy",
    "greens_function",
    "interpolate_forces",
    "nonbonded_instructions",
    "nonbonded_instructions_tuned",
    "pair_forces",
    "pme_reciprocal",
    "spread_charges",
]
