"""Sequential mini-NAMD: the reference MD engine.

Runs real molecular dynamics (velocity Verlet; bonded + cutoff
non-bonded via the patch/cell decomposition + reciprocal PME every k
steps) on a single Python process.  This is the *numerical* reference:
the Charm++-distributed version (:mod:`repro.namd.charm_app`) must
produce the same trajectories, and energy-conservation tests run here.

It also doubles as the per-step *work meter*: it counts non-bonded
pairs, FFT sizes and message-equivalent volumes, which calibrate the
analytic scaling model in :mod:`repro.perfmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .forces import angle_forces, bonded_forces, exclusion_corrections, pair_forces
from .integrator import kick, drift, kinetic_energy, remove_drift, temperature
from .patches import PatchGrid
from .pme import ewald_self_energy, pme_reciprocal
from .system import MolecularSystem

__all__ = ["StepEnergies", "SequentialMD"]


@dataclass
class StepEnergies:
    """Energy decomposition of one step (model units, e^2/A)."""

    bonded: float = 0.0
    nonbonded: float = 0.0  # LJ + real-space Ewald
    reciprocal: float = 0.0
    self_energy: float = 0.0
    kinetic: float = 0.0

    @property
    def potential(self) -> float:
        return self.bonded + self.nonbonded + self.reciprocal + self.self_energy

    @property
    def total(self) -> float:
        return self.potential + self.kinetic


class SequentialMD:
    """Reference MD driver over a :class:`MolecularSystem`."""

    def __init__(
        self,
        system: MolecularSystem,
        beta: float = 0.35,
        pme_every: int = 4,
        pme_order: int = 4,
        dt: Optional[float] = None,
        use_exclusions: bool = True,
        thermostat_every: Optional[int] = None,
        target_temperature: Optional[float] = None,
    ) -> None:
        if pme_every < 1:
            raise ValueError("pme_every must be >= 1")
        if thermostat_every is not None and (
            thermostat_every < 1 or target_temperature is None
        ):
            raise ValueError("thermostat needs an interval >= 1 and a target T")
        self.system = system
        self.beta = beta
        self.pme_every = pme_every
        self.pme_order = pme_order
        self.use_exclusions = use_exclusions
        self.exclusion_pairs = system.exclusions() if use_exclusions else []
        self.thermostat_every = thermostat_every
        self.target_temperature = target_temperature
        self.dt = dt if dt is not None else system.spec.timestep_fs * 0.02
        self.grid = PatchGrid.for_cutoff(system.spec.box, system.spec.cutoff)
        self.step_count = 0
        self._cached_recip_forces = np.zeros_like(system.positions)
        self._cached_recip_energy = 0.0
        self.energies: List[StepEnergies] = []
        self.pair_counts: List[int] = []

    # -- forces -----------------------------------------------------------
    def compute_short_range(self) -> tuple[float, np.ndarray, int]:
        """Bonded + cutoff non-bonded via the patch decomposition."""
        sysm = self.system
        box = sysm.box
        forces = np.zeros_like(sysm.positions)
        energy = 0.0
        total_pairs = 0
        bins = self.grid.bin_atoms(sysm.positions)
        for (a, b) in self.grid.neighbor_pairs():
            ia, ib = bins[a], bins[b]
            if len(ia) == 0 or len(ib) == 0:
                continue
            e, fa, fb, npairs = pair_forces(
                sysm.positions[ia],
                sysm.positions[ib],
                sysm.charges[ia],
                sysm.charges[ib],
                box,
                sysm.spec.cutoff,
                self.beta,
                same_block=(a == b),
            )
            energy += e
            total_pairs += npairs
            np.add.at(forces, ia, fa)
            if a != b:
                np.add.at(forces, ib, fb)
        e_bond, f_bond = bonded_forces(sysm.positions, sysm.bonds, box)
        e_ang, f_ang = angle_forces(sysm.positions, sysm.angles, box)
        energy += e_bond + e_ang
        forces = forces + f_bond + f_ang
        if self.exclusion_pairs:
            e_x, f_x = exclusion_corrections(
                sysm.positions, self.exclusion_pairs, sysm.charges, box, self.beta
            )
            energy += e_x
            forces = forces + f_x
        return energy, forces, total_pairs

    def compute_reciprocal(self) -> tuple[float, np.ndarray]:
        sysm = self.system
        return pme_reciprocal(
            sysm.positions,
            sysm.charges,
            sysm.box,
            sysm.spec.pme_grid,
            self.beta,
            self.pme_order,
        )

    def compute_forces(self, refresh_pme: bool) -> tuple[StepEnergies, np.ndarray]:
        e_short, f_short, npairs = self.compute_short_range()
        self.pair_counts.append(npairs)
        if refresh_pme:
            self._cached_recip_energy, self._cached_recip_forces = (
                self.compute_reciprocal()
            )
        energies = StepEnergies(
            bonded=0.0,  # folded into e_short; split kept simple
            nonbonded=e_short,
            reciprocal=self._cached_recip_energy,
            self_energy=ewald_self_energy(self.system.charges, self.beta),
        )
        return energies, f_short + self._cached_recip_forces

    # -- stepping -----------------------------------------------------------
    def step(self) -> StepEnergies:
        """One velocity-Verlet step (PME refreshed every ``pme_every``)."""
        sysm = self.system
        refresh = self.step_count % self.pme_every == 0
        if self.step_count == 0:
            self._energies0, self._forces = self.compute_forces(refresh_pme=True)
        kick(sysm.velocities, self._forces, sysm.masses, self.dt)
        drift(sysm.positions, sysm.velocities, self.dt, sysm.box)
        refresh = (self.step_count + 1) % self.pme_every == 0 or self.pme_every == 1
        energies, self._forces = self.compute_forces(refresh_pme=refresh)
        kick(sysm.velocities, self._forces, sysm.masses, self.dt)
        self.step_count += 1
        if (
            self.thermostat_every is not None
            and self.step_count % self.thermostat_every == 0
        ):
            self._rescale_velocities()
        energies.kinetic = kinetic_energy(sysm.velocities, sysm.masses)
        self.energies.append(energies)
        return energies

    def _rescale_velocities(self) -> None:
        """Velocity-rescaling thermostat toward the target temperature."""
        sysm = self.system
        t_now = temperature(sysm.velocities, sysm.masses)
        if t_now <= 0:
            return
        lam = float(np.sqrt(self.target_temperature / t_now))
        sysm.velocities *= lam

    def run(self, n_steps: int) -> List[StepEnergies]:
        remove_drift(self.system.velocities, self.system.masses)
        for _ in range(n_steps):
            self.step()
        return self.energies[-n_steps:]

    # -- work metering (calibrates the analytic model) -------------------------
    def mean_pairs_per_step(self) -> float:
        if not self.pair_counts:
            raise ValueError("run at least one step first")
        return float(np.mean(self.pair_counts))
