"""Short-range force kernels: LJ + screened Coulomb + bonds (§IV-B1).

The *QPX* path is the vectorized numpy kernel (standing in for the XL
compiler-intrinsic QPX SIMD inner loop the paper tuned); the *scalar*
path produces identical numbers but is charged at the scalar cost in
the simulated-cost model.  The paper measured +15.8% serial speedup
from the QPX/L1P work; the cost model in :mod:`repro.perfmodel` carries
that ratio.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np
from scipy.special import erfc

__all__ = [
    "pair_forces",
    "bonded_forces",
    "angle_forces",
    "exclusion_corrections",
    "nonbonded_instructions",
    "PAIR_FLOPS",
    "QPX_SPEEDUP",
]

#: Floating-point work per non-bonded pair inside cutoff (distance,
#: erfc interpolation-table lookup, LJ, accumulation) [calibrated to
#: NAMD kernels].
PAIR_FLOPS = 45.0
#: Measured serial gain of the QPX + load-to-use-distance tuning
#: [paper §IV-B1: "improved the serial performance ... by about 15.8%"].
QPX_SPEEDUP = 1.158

#: LJ parameters of the synthetic atom type, scaled to the synthetic
#: lattice spacing (~2.15 A at ApoA1 density) so the initial
#: configuration starts near the LJ minimum (model units).
LJ_EPSILON = 0.02
LJ_SIGMA = 1.8


def pair_forces(
    pos_i: np.ndarray,
    pos_j: np.ndarray,
    q_i: np.ndarray,
    q_j: np.ndarray,
    box: np.ndarray,
    cutoff: float,
    beta: float,
    same_block: bool = False,
) -> Tuple[float, np.ndarray, np.ndarray, int]:
    """Non-bonded interactions between two atom blocks.

    Returns ``(energy, forces_on_i, forces_on_j, n_pairs)`` with
    minimum-image periodic distances, an erfc-screened Coulomb term
    (the Ewald real-space part) and Lennard-Jones.  With
    ``same_block=True`` the blocks are the same array and each pair is
    counted once.
    """
    pos_i = np.asarray(pos_i)
    pos_j = np.asarray(pos_j)
    delta = pos_i[:, None, :] - pos_j[None, :, :]
    delta -= np.round(delta / box) * box
    r2 = np.einsum("ijk,ijk->ij", delta, delta)
    if same_block:
        iu = np.triu_indices(r2.shape[0], k=1)
        mask = np.zeros_like(r2, dtype=bool)
        mask[iu] = True
        mask &= r2 < cutoff**2
    else:
        mask = r2 < cutoff**2
    n_pairs = int(np.count_nonzero(mask))
    if n_pairs == 0:
        return 0.0, np.zeros_like(pos_i), np.zeros_like(pos_j), 0
    r2s = np.where(mask, r2, 1.0)
    r = np.sqrt(r2s)
    qq = q_i[:, None] * q_j[None, :]
    # Screened Coulomb (real-space Ewald term).
    e_coul = qq * erfc(beta * r) / r
    dedr_coul = -qq * (
        erfc(beta * r) / r2s
        + 2 * beta / math.sqrt(math.pi) * np.exp(-(beta**2) * r2s) / r
    )
    # Lennard-Jones.
    s6 = (LJ_SIGMA**2 / r2s) ** 3
    e_lj = 4 * LJ_EPSILON * (s6**2 - s6)
    dedr_lj = 4 * LJ_EPSILON * (-12 * s6**2 + 6 * s6) / r
    e_pair = np.where(mask, e_coul + e_lj, 0.0)
    dedr = np.where(mask, dedr_coul + dedr_lj, 0.0)
    energy = float(np.sum(e_pair))
    fmag = -dedr / r
    fvec = np.where(mask[..., None], fmag[..., None] * delta, 0.0)
    f_i = np.sum(fvec, axis=1)
    f_j = -np.sum(fvec, axis=0)
    if same_block:
        # Upper-triangle masking puts the action on the row atom and the
        # reaction on the column atom of the same array: combine.
        f_i = f_i + f_j
        f_j = f_i
    return energy, f_i, f_j, n_pairs


def bonded_forces(
    positions: np.ndarray,
    bonds: List[Tuple[int, int, float, float]],
    box: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Harmonic bond energy/forces: E = k (r - r0)^2 (vectorized)."""
    forces = np.zeros_like(positions)
    if not bonds:
        return 0.0, forces
    arr = np.asarray([(i, j, r0, k) for (i, j, r0, k) in bonds])
    i = arr[:, 0].astype(int)
    j = arr[:, 1].astype(int)
    r0 = arr[:, 2]
    k = arr[:, 3]
    d = positions[i] - positions[j]
    d -= np.round(d / box) * box
    r = np.linalg.norm(d, axis=1)
    energy = float(np.sum(k * (r - r0) ** 2))
    fmag = -2 * k * (r - r0) / np.where(r > 0, r, 1.0)
    fvec = fmag[:, None] * d
    np.add.at(forces, i, fvec)
    np.add.at(forces, j, -fvec)
    return energy, forces


def angle_forces(
    positions: np.ndarray,
    angles: List[Tuple[int, int, int, float, float]],
    box: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Harmonic angle energy/forces: E = k (theta - theta0)^2.

    ``angles`` — (i, j, k, theta0, kang) with j the vertex atom.
    Vectorized over all angles with minimum-image bond vectors.
    """
    forces = np.zeros_like(positions)
    if not angles:
        return 0.0, forces
    arr = np.asarray(angles, dtype=np.float64)
    ai = arr[:, 0].astype(int)
    aj = arr[:, 1].astype(int)
    ak = arr[:, 2].astype(int)
    theta0 = arr[:, 3]
    kang = arr[:, 4]
    rij = positions[ai] - positions[aj]
    rkj = positions[ak] - positions[aj]
    rij -= np.round(rij / box) * box
    rkj -= np.round(rkj / box) * box
    nij = np.linalg.norm(rij, axis=1)
    nkj = np.linalg.norm(rkj, axis=1)
    cos_t = np.einsum("ij,ij->i", rij, rkj) / (nij * nkj)
    cos_t = np.clip(cos_t, -1.0, 1.0)
    theta = np.arccos(cos_t)
    energy = float(np.sum(kang * (theta - theta0) ** 2))
    # dE/dtheta, with the standard angle-gradient geometry.
    dedt = 2 * kang * (theta - theta0)
    sin_t = np.sqrt(np.maximum(1.0 - cos_t**2, 1e-12))
    # Unit vectors perpendicular to each arm, in the angle plane.
    fi = (rij * (cos_t / nij)[:, None] - rkj / nkj[:, None]) / (nij * sin_t)[:, None]
    fk = (rkj * (cos_t / nkj)[:, None] - rij / nij[:, None]) / (nkj * sin_t)[:, None]
    fi *= dedt[:, None]
    fk *= dedt[:, None]
    np.add.at(forces, ai, -fi)
    np.add.at(forces, ak, -fk)
    np.add.at(forces, aj, fi + fk)
    return energy, forces


def exclusion_corrections(
    positions: np.ndarray,
    pairs: List[Tuple[int, int]],
    charges: np.ndarray,
    box: np.ndarray,
    beta: float,
) -> Tuple[float, np.ndarray]:
    """Remove non-bonded interactions between excluded (bonded) pairs.

    Bonded (1-2) pairs must not interact through LJ or Coulomb.  With
    Ewald electrostatics the exclusion has two parts: subtract the
    real-space screened term ``qq erfc(beta r)/r`` *and* cancel the
    reciprocal-space contribution ``qq erf(beta r)/r`` that PME
    unavoidably includes for every pair — together the full ``qq/r``
    plus LJ.  Returns (energy_correction, force_correction) to *add* to
    the totals.
    """
    forces = np.zeros_like(positions)
    if not pairs:
        return 0.0, forces
    arr = np.asarray(pairs, dtype=np.int64)
    i, j = arr[:, 0], arr[:, 1]
    d = positions[i] - positions[j]
    d -= np.round(d / box) * box
    r2 = np.einsum("ij,ij->i", d, d)
    r = np.sqrt(r2)
    qq = charges[i] * charges[j]
    # Full Coulomb (erfc + erf parts reassemble 1/r).
    e_coul = qq / r
    dedr_coul = -qq / r2
    s6 = (LJ_SIGMA**2 / r2) ** 3
    e_lj = 4 * LJ_EPSILON * (s6**2 - s6)
    dedr_lj = 4 * LJ_EPSILON * (-12 * s6**2 + 6 * s6) / r
    energy = -float(np.sum(e_coul + e_lj))
    fmag = (dedr_coul + dedr_lj) / r  # minus the pair force
    fvec = fmag[:, None] * d
    np.add.at(forces, i, fvec)
    np.add.at(forces, j, -fvec)
    return energy, forces


def nonbonded_instructions(n_pairs: int, qpx: bool = True) -> float:
    """Simulated instruction count for a non-bonded kernel invocation.

    The QPX path retires PAIR_FLOPS/pair on the 4-wide unit with the
    additional 15.8% from the L1P load-to-use-distance tuning; the
    scalar path retires one flop per instruction.
    """
    if n_pairs < 0:
        raise ValueError("pair count must be >= 0")
    if qpx:
        return n_pairs * PAIR_FLOPS / (4.0 * QPX_SPEEDUP)
    return n_pairs * PAIR_FLOPS


def nonbonded_instructions_tuned(n_pairs: int, tuned: bool = True) -> float:
    """QPX instruction count with / without the L1P tuning (+15.8%)."""
    base = n_pairs * PAIR_FLOPS / 4.0
    return base / QPX_SPEEDUP if tuned else base
